(* Integration tests: the full Namer pipeline end to end on small corpora,
   including the Figure 2 walkthrough and the ablation switches. *)

module Namer = Namer_core.Namer
module Frontend = Namer_core.Frontend
module Corpus = Namer_corpus.Corpus
module Pattern = Namer_pattern.Pattern
module Miner = Namer_mining.Miner
module Features = Namer_classifier.Features

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let corpus_cfg lang =
  {
    (Corpus.default_config lang) with
    Corpus.n_repos = 12;
    files_per_repo = (5, 8);
    n_commit_files = 40;
    issue_rate = 0.05;
    benign_rate = 0.06;
  }

let namer_cfg =
  {
    Namer.default_config with
    miner = { Miner.default_config with min_support = 8; min_path_freq = 4 };
    n_labeled = 60;
  }

let build_py = lazy (Namer.build namer_cfg (Corpus.generate (corpus_cfg Corpus.Python)))
let build_java = lazy (Namer.build namer_cfg (Corpus.generate (corpus_cfg Corpus.Java)))

let test_python_pipeline () =
  let t = Lazy.force build_py in
  check_bool "patterns mined" true (Pattern.Store.size t.Namer.store > 10);
  check_bool "violations found" true (Array.length t.Namer.violations > 20);
  check_bool "classifier trained" true (t.Namer.classifier <> None);
  check_bool "coverage counted" true (t.Namer.n_files_violating > 0)

let test_python_detects_injections () =
  let t = Lazy.force build_py in
  let tp = ref 0 in
  Array.iter
    (fun v ->
      match Namer.grade t v with Corpus.Oracle.True_issue _ -> incr tp | _ -> ())
    t.Namer.violations;
  check_bool "several true issues among violations" true (!tp > 5)

let test_classifier_improves_precision () =
  let t = Lazy.force build_py in
  let graded vs =
    let o = Namer.grade_reports t vs in
    Namer.precision o
  in
  let sampled = Namer.sample_violations t ~n:200 ~seed:77 in
  let all = graded sampled in
  let filtered = graded (List.filter (Namer.classify t) sampled) in
  check_bool
    (Printf.sprintf "with C (%.2f) ≥ w/o C (%.2f)" filtered all)
    true (filtered >= all)

let test_sampling_excludes_training () =
  let t = Lazy.force build_py in
  let sampled = Namer.sample_violations t ~n:10_000 ~seed:1 in
  check_bool "training rows excluded" true
    (List.length sampled
    <= Array.length t.Namer.violations - Hashtbl.length t.Namer.training_set)

let test_feature_vectors_complete () =
  let t = Lazy.force build_py in
  Array.iter
    (fun v ->
      check_int "17 features per violation" Features.n_features
        (Array.length v.Namer.v_features))
    t.Namer.violations

let test_java_pipeline () =
  let t = Lazy.force build_java in
  check_bool "java patterns mined" true (Pattern.Store.size t.Namer.store > 5);
  check_bool "java violations found" true (Array.length t.Namer.violations > 10);
  let tp = ref 0 in
  Array.iter
    (fun v ->
      match Namer.grade t v with Corpus.Oracle.True_issue _ -> incr tp | _ -> ())
    t.Namer.violations;
  check_bool "java true issues found" true (!tp > 3)

let test_ablation_analysis_changes_pool () =
  let corpus = Corpus.generate (corpus_cfg Corpus.Python) in
  let with_a = Namer.build namer_cfg corpus in
  let without_a = Namer.build { namer_cfg with Namer.use_analysis = false } corpus in
  check_bool "ablation yields a different violation pool" true
    (Array.length with_a.Namer.violations <> Array.length without_a.Namer.violations)

let test_no_classifier_reports_all () =
  let corpus = Corpus.generate (corpus_cfg Corpus.Python) in
  let t = Namer.build { namer_cfg with Namer.use_classifier = false } corpus in
  check_bool "no classifier trained" true (t.Namer.classifier = None);
  let sampled = Namer.sample_violations t ~n:50 ~seed:3 in
  check_int "everything reported" (List.length sampled)
    (List.length (List.filter (Namer.classify t) sampled))

(* ---------------- Figure 2 end-to-end ---------------- *)

let figure2_file =
  {|import os
from unittest import TestCase

class TestPicture(TestCase):
    def test_angle_picture(self):
        rotated_picture_name = "IMG_2259.jpg"
        picture = self.slide.pictures
        self.assertTrue(picture.rotate_angle, 90)
|}

let test_figure2_detected () =
  (* Build Namer on a Python corpus, then scan the paper's buggy file with
     the mined patterns: the assertTrue misuse must violate with fix
     True → Equal. *)
  let t = Lazy.force build_py in
  let parsed = Frontend.parse_file Corpus.Python ~use_analysis:true figure2_file in
  let found = ref false in
  List.iter
    (fun (s : Frontend.stmt) ->
      let origins = parsed.Frontend.origins ~cls:s.Frontend.cls ~fn:s.Frontend.fn in
      let plus = Namer_namepath.Astplus.transform ~origins s.Frontend.tree in
      let digest = Pattern.Stmt_paths.of_tree plus in
      Pattern.Store.candidates t.Namer.store digest
      |> List.iter (fun p ->
             match Pattern.check p digest with
             | Pattern.Violated info
               when info.Pattern.found = "True" && info.Pattern.suggested = "Equal" ->
                 found := true
             | _ -> ()))
    parsed.Frontend.stmts;
  check_bool "figure 2 bug found with fix True → Equal" true !found

let test_evaluate_protocol () =
  let t = Lazy.force build_py in
  let o = Namer.evaluate ~n:100 ~seed:55 t in
  check_bool "reports bounded by sample" true (o.Namer.n_reports <= 100);
  check_int "verdicts partition the reports" o.Namer.n_reports
    (o.Namer.semantic + o.Namer.quality + o.Namer.false_pos);
  check_bool "precision in range" true
    (Namer.precision o >= 0.0 && Namer.precision o <= 1.0)

let test_feature_weights_available () =
  let t = Lazy.force build_py in
  check_int "one weight per feature" Features.n_features
    (Array.length (Namer.feature_weights t))

let test_source_line_lookup () =
  let t = Lazy.force build_py in
  match t.Namer.violations with
  | [||] -> Alcotest.fail "expected violations"
  | vs ->
      let line = Namer.source_line t vs.(0) in
      check_bool "line text found" true (String.length line > 0 && line.[0] <> '<')

let suite =
  [
    Alcotest.test_case "python pipeline builds" `Slow test_python_pipeline;
    Alcotest.test_case "injections detected" `Slow test_python_detects_injections;
    Alcotest.test_case "classifier improves precision" `Slow test_classifier_improves_precision;
    Alcotest.test_case "sampling excludes training" `Slow test_sampling_excludes_training;
    Alcotest.test_case "feature vectors complete" `Slow test_feature_vectors_complete;
    Alcotest.test_case "java pipeline builds" `Slow test_java_pipeline;
    Alcotest.test_case "w/o A changes the pool" `Slow test_ablation_analysis_changes_pool;
    Alcotest.test_case "w/o C reports everything" `Slow test_no_classifier_reports_all;
    Alcotest.test_case "figure 2 bug detected end-to-end" `Slow test_figure2_detected;
    Alcotest.test_case "evaluation protocol" `Slow test_evaluate_protocol;
    Alcotest.test_case "table 9 weights" `Slow test_feature_weights_available;
    Alcotest.test_case "report source lines" `Slow test_source_line_lookup;
  ]

let test_swap_detected () =
  (* ordering-pattern extension: a swapped resize call in a fresh file is
     flagged with the canonical-order fix *)
  let t = Lazy.force build_py in
  let src =
    "def scale_picture(image, width, height):\n    resized = image.resize(height, width)\n    return resized\n"
  in
  let parsed = Frontend.parse_file Corpus.Python ~use_analysis:true src in
  let found = ref false in
  List.iter
    (fun (s : Frontend.stmt) ->
      let origins = parsed.Frontend.origins ~cls:s.Frontend.cls ~fn:s.Frontend.fn in
      let plus = Namer_namepath.Astplus.transform ~origins s.Frontend.tree in
      let digest = Pattern.Stmt_paths.of_tree plus in
      Pattern.Store.candidates t.Namer.store digest
      |> List.iter (fun p ->
             match (p.Pattern.kind, Pattern.check p digest) with
             | Pattern.Ordering _, Pattern.Violated info
               when info.Pattern.found = "height" && info.Pattern.suggested = "width" ->
                 found := true
             | _ -> ()))
    parsed.Frontend.stmts;
  check_bool "swapped arguments detected via ordering pattern" true !found

let suite = suite @ [ Alcotest.test_case "argument swap detected" `Slow test_swap_detected ]
