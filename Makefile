# Contributor entry points mirroring .github/workflows/ci.yml, so CI is
# reproducible locally with one command.  Tool-dependent targets (fmt, doc)
# skip with a notice when the tool is not installed rather than failing,
# matching the CI jobs that install them explicitly.

.PHONY: all build test fmt doc bench bench-smoke obs-smoke serve-smoke merge-smoke ci clean

all: build

build:
	dune build

test: build
	dune runtest

fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
	  dune build @fmt; \
	else \
	  echo "fmt: ocamlformat not installed — skipping (CI runs it)"; \
	fi

doc:
	@if command -v odoc >/dev/null 2>&1; then \
	  dune build @doc; \
	else \
	  echo "doc: odoc not installed — skipping (CI runs it)"; \
	fi

# Full evaluation tables (slow); see bench/main.ml for flags.
bench:
	dune exec bench/main.exe

# Re-measure the pipeline and gate against the committed baseline
# (test/check_bench.ml: >3x per-stage wall-clock regression, jobs=1 vs
# jobs=4 report divergence, speedup < 1.0x, or >1.5x build allocation
# growth, fails the build).  The second line re-runs the checker so the
# speedup and allocation deltas print even when the alias was cached.
bench-smoke:
	dune build @bench-smoke
	dune exec test/check_bench.exe -- _build/default/test/BENCH_pipeline.json BENCH_pipeline.json
	dune exec bin/namer_cli.exe -- report --check

# Observability smoke mirroring the obs-smoke CI job: train + two cached
# scans into a throwaway state dir, then assert 3 ledger records, an
# OpenMetrics export that validates, and a report that shows both scans.
obs-smoke: build
	@set -eu; \
	state=$$(mktemp -d); trap 'rm -rf "$$state"' EXIT; \
	export XDG_STATE_HOME="$$state"; \
	dune exec bin/namer_cli.exe -- generate --lang python --repos 12 --out "$$state/corpus"; \
	dune exec bin/namer_cli.exe -- train --lang python "$$state/corpus" --model "$$state/m.nmdl"; \
	dune exec bin/namer_cli.exe -- scan --model "$$state/m.nmdl" --cache-dir "$$state/cache" \
	  --metrics-out "$$state/om.prom" --log-json "$$state/scan1.jsonl" "$$state/corpus" > "$$state/s1.out"; \
	dune exec bin/namer_cli.exe -- scan --model "$$state/m.nmdl" --cache-dir "$$state/cache" \
	  --quiet --metrics-out "$$state/om.prom" --log-json "$$state/scan2.jsonl" "$$state/corpus" > "$$state/s2.out"; \
	diff "$$state/s1.out" "$$state/s2.out"; \
	test "$$(wc -l < "$$state/namer/ledger.jsonl")" -eq 3; \
	grep -q '^# EOF$$' "$$state/om.prom"; \
	dune exec bin/namer_cli.exe -- report --check; \
	echo "obs-smoke: OK"

# Serve smoke mirroring the serve-smoke CI job: start the daemon on a
# Unix socket, fire 50 concurrent requests (with a model hot-swap
# mid-traffic) through bench/loadtest.exe, and require the responses to
# be byte-identical to `namer scan --model`, a clean SIGTERM drain, and
# a serve row in the run ledger.
serve-smoke: build
	@set -eu; \
	state=$$(mktemp -d); trap 'rm -rf "$$state"' EXIT; \
	namer=_build/default/bin/namer_cli.exe; \
	loadtest=_build/default/bench/loadtest.exe; \
	"$$namer" generate --lang python --repos 12 --out "$$state/corpus" 2>/dev/null; \
	"$$namer" train --lang python "$$state/corpus" --model "$$state/m.nmdl" 2>/dev/null; \
	"$$namer" serve --model "$$state/m.nmdl" --socket "$$state/namer.sock" \
	  --cache-dir "$$state/cache" --jobs 4 --ledger "$$state/ledger" \
	  2> "$$state/daemon.err" & pid=$$!; \
	for _ in $$(seq 1 100); do [ -S "$$state/namer.sock" ] && break; sleep 0.1; done; \
	[ -S "$$state/namer.sock" ]; \
	"$$loadtest" --socket "$$state/namer.sock" --dir "$$state/corpus" \
	  --clients 8 --requests 50 --max-reports 100000 \
	  --reload-at 25 --reload-model "$$state/m.nmdl" \
	  --expect-identical --dump-text "$$state/serve.txt" --out "$$state/loadtest.json"; \
	"$$namer" scan --model "$$state/m.nmdl" --max-reports 100000 "$$state/corpus" \
	  > "$$state/cli.txt" 2>/dev/null; \
	diff "$$state/serve.txt" "$$state/cli.txt"; \
	kill -TERM "$$pid"; wait "$$pid"; \
	[ ! -e "$$state/namer.sock" ]; \
	grep -q '"cmd":"serve"' "$$state/ledger/ledger.jsonl"; \
	cat "$$state/daemon.err"; \
	echo "serve-smoke: OK"

# Merge smoke mirroring the merge-smoke CI job: deal a generated corpus's
# repos into two symlink-farm halves, train each into a partial, merge
# the partials into a model, and require it to scan the corpus
# byte-identically to a direct train over everything; then check the
# --update incremental path lands on the same reports and that the merge
# runs left cmd:"merge" rows in the run ledger.
merge-smoke: build
	@set -eu; \
	state=$$(mktemp -d); trap 'rm -rf "$$state"' EXIT; \
	namer=_build/default/bin/namer_cli.exe; \
	"$$namer" corpus --files 2000 --out "$$state/corpus" 2>/dev/null; \
	mkdir -p "$$state/half1" "$$state/half2"; \
	i=0; for d in "$$state"/corpus/*/; do \
	  i=$$((i + 1)); \
	  ln -s "$$(readlink -f "$$d")" "$$state/half$$((i % 2 + 1))/$$(basename "$$d")"; \
	done; \
	"$$namer" train "$$state/half1" --partial "$$state/h1.nprt" --ledger "$$state/ledger" 2>/dev/null; \
	"$$namer" train "$$state/half2" --partial "$$state/h2.nprt" --ledger "$$state/ledger" 2>/dev/null; \
	"$$namer" train --merge "$$state/h1.nprt" "$$state/h2.nprt" \
	  --model "$$state/merged.nmdl" --ledger "$$state/ledger" 2>/dev/null; \
	"$$namer" train "$$state/corpus" --model "$$state/full.nmdl" --ledger "$$state/ledger" 2>/dev/null; \
	"$$namer" scan "$$state/corpus" --model "$$state/merged.nmdl" --max-reports 100000 \
	  > "$$state/merged.txt" 2>/dev/null; \
	"$$namer" scan "$$state/corpus" --model "$$state/full.nmdl" --max-reports 100000 \
	  > "$$state/full.txt" 2>/dev/null; \
	diff "$$state/merged.txt" "$$state/full.txt"; \
	cp "$$state/h1.nprt" "$$state/inc.nprt"; \
	"$$namer" train --update "$$state/inc.nprt" --add "$$state/half2" \
	  --model "$$state/inc.nmdl" --ledger "$$state/ledger" 2>/dev/null; \
	"$$namer" scan "$$state/corpus" --model "$$state/inc.nmdl" --max-reports 100000 \
	  > "$$state/inc.txt" 2>/dev/null; \
	diff "$$state/inc.txt" "$$state/full.txt"; \
	test "$$(grep -c '"cmd":"merge"' "$$state/ledger/ledger.jsonl")" -eq 2; \
	"$$namer" report --dir "$$state/ledger" | grep -q ' merge '; \
	echo "merge-smoke: OK"

# Everything the CI workflow checks, in order.
ci: build test fmt bench-smoke obs-smoke serve-smoke merge-smoke

clean:
	dune clean
