# Contributor entry points mirroring .github/workflows/ci.yml, so CI is
# reproducible locally with one command.  Tool-dependent targets (fmt, doc)
# skip with a notice when the tool is not installed rather than failing,
# matching the CI jobs that install them explicitly.

.PHONY: all build test fmt doc bench bench-smoke obs-smoke ci clean

all: build

build:
	dune build

test: build
	dune runtest

fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
	  dune build @fmt; \
	else \
	  echo "fmt: ocamlformat not installed — skipping (CI runs it)"; \
	fi

doc:
	@if command -v odoc >/dev/null 2>&1; then \
	  dune build @doc; \
	else \
	  echo "doc: odoc not installed — skipping (CI runs it)"; \
	fi

# Full evaluation tables (slow); see bench/main.ml for flags.
bench:
	dune exec bench/main.exe

# Re-measure the pipeline and gate against the committed baseline
# (test/check_bench.ml: >3x per-stage wall-clock regression, jobs=1 vs
# jobs=4 report divergence, speedup < 1.0x, or >1.5x build allocation
# growth, fails the build).  The second line re-runs the checker so the
# speedup and allocation deltas print even when the alias was cached.
bench-smoke:
	dune build @bench-smoke
	dune exec test/check_bench.exe -- _build/default/test/BENCH_pipeline.json BENCH_pipeline.json
	dune exec bin/namer_cli.exe -- report --check

# Observability smoke mirroring the obs-smoke CI job: train + two cached
# scans into a throwaway state dir, then assert 3 ledger records, an
# OpenMetrics export that validates, and a report that shows both scans.
obs-smoke: build
	@set -eu; \
	state=$$(mktemp -d); trap 'rm -rf "$$state"' EXIT; \
	export XDG_STATE_HOME="$$state"; \
	dune exec bin/namer_cli.exe -- generate --lang python --repos 12 --out "$$state/corpus"; \
	dune exec bin/namer_cli.exe -- train --lang python "$$state/corpus" --model "$$state/m.nmdl"; \
	dune exec bin/namer_cli.exe -- scan --model "$$state/m.nmdl" --cache-dir "$$state/cache" \
	  --metrics-out "$$state/om.prom" --log-json "$$state/scan1.jsonl" "$$state/corpus" > "$$state/s1.out"; \
	dune exec bin/namer_cli.exe -- scan --model "$$state/m.nmdl" --cache-dir "$$state/cache" \
	  --quiet --metrics-out "$$state/om.prom" --log-json "$$state/scan2.jsonl" "$$state/corpus" > "$$state/s2.out"; \
	diff "$$state/s1.out" "$$state/s2.out"; \
	test "$$(wc -l < "$$state/namer/ledger.jsonl")" -eq 3; \
	grep -q '^# EOF$$' "$$state/om.prom"; \
	dune exec bin/namer_cli.exe -- report --check; \
	echo "obs-smoke: OK"

# Everything the CI workflow checks, in order.
ci: build test fmt bench-smoke obs-smoke

clean:
	dune clean
