# Contributor entry points mirroring .github/workflows/ci.yml, so CI is
# reproducible locally with one command.  Tool-dependent targets (fmt, doc)
# skip with a notice when the tool is not installed rather than failing,
# matching the CI jobs that install them explicitly.

.PHONY: all build test fmt doc bench bench-smoke ci clean

all: build

build:
	dune build

test: build
	dune runtest

fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
	  dune build @fmt; \
	else \
	  echo "fmt: ocamlformat not installed — skipping (CI runs it)"; \
	fi

doc:
	@if command -v odoc >/dev/null 2>&1; then \
	  dune build @doc; \
	else \
	  echo "doc: odoc not installed — skipping (CI runs it)"; \
	fi

# Full evaluation tables (slow); see bench/main.ml for flags.
bench:
	dune exec bench/main.exe

# Re-measure the pipeline and gate against the committed baseline
# (test/check_bench.ml: >3x per-stage wall-clock regression, jobs=1 vs
# jobs=4 report divergence, speedup < 1.0x, or >1.5x build allocation
# growth, fails the build).  The second line re-runs the checker so the
# speedup and allocation deltas print even when the alias was cached.
bench-smoke:
	dune build @bench-smoke
	dune exec test/check_bench.exe -- _build/default/test/BENCH_pipeline.json BENCH_pipeline.json

# Everything the CI workflow checks, in order.
ci: build test fmt bench-smoke

clean:
	dune clean
