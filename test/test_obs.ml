(* Tests for Namer_obs: ledger crash-safety (torn-line recovery, atomic
   concurrent appends), OpenMetrics rendering/validation (exposition
   format, label escaping), the structured event log with trace/span
   context propagated across the domain pool, and the ledger trend
   table/regression gate behind [namer report]. *)

module Ledger = Namer_obs.Ledger
module Openmetrics = Namer_obs.Openmetrics
module Events = Namer_obs.Events
module Trend = Namer_obs.Trend
module J = Namer_util.Json

let temp_counter = ref 0

let fresh_dir () =
  incr temp_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "namer-obs-test-%d-%d" (Unix.getpid ()) !temp_counter)
  in
  (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
  dir

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let record ?(cmd = "scan") i =
  J.Obj
    [
      ("schema", J.Int Ledger.schema_version);
      ("ts", J.Float (1000.0 +. float_of_int i));
      ("cmd", J.String cmd);
      ("i", J.Int i);
    ]

(* ---------------- ledger ---------------- *)

let test_ledger_roundtrip () =
  let dir = fresh_dir () in
  Alcotest.(check int) "missing file is empty" 0
    (List.length (Ledger.read ~dir).Ledger.records);
  for i = 1 to 3 do
    Ledger.append ~dir (record i)
  done;
  let { Ledger.records; dropped } = Ledger.read ~dir in
  Alcotest.(check int) "three records" 3 (List.length records);
  Alcotest.(check int) "none dropped" 0 dropped;
  (* file order preserved *)
  List.iteri
    (fun k r ->
      match r with
      | J.Obj fields ->
          Alcotest.(check bool) "ordered" true (List.assoc "i" fields = J.Int (k + 1))
      | _ -> Alcotest.fail "record not an object")
    records

let test_ledger_torn_line_recovery () =
  let dir = fresh_dir () in
  Ledger.append ~dir (record 1);
  Ledger.append ~dir (record 2);
  (* simulate a crash mid-append: a partial record with no newline *)
  let oc =
    open_out_gen [ Open_append; Open_binary ] 0o644 (Ledger.path ~dir)
  in
  output_string oc "{\"schema\":1,\"ts\":3000.0,\"cmd\":\"sc";
  close_out oc;
  let { Ledger.records; dropped } = Ledger.read ~dir in
  Alcotest.(check int) "intact records survive" 2 (List.length records);
  Alcotest.(check int) "torn fragment dropped" 1 dropped;
  (* the next append must land on a fresh line and stay parseable *)
  Ledger.append ~dir (record 3);
  let { Ledger.records; dropped } = Ledger.read ~dir in
  Alcotest.(check int) "append after torn write recovers" 3 (List.length records);
  Alcotest.(check int) "only the torn fragment lost" 1 dropped

let test_ledger_corrupt_middle_line () =
  let dir = fresh_dir () in
  Ledger.append ~dir (record 1);
  let oc =
    open_out_gen [ Open_append; Open_binary ] 0o644 (Ledger.path ~dir)
  in
  output_string oc "not json at all\n";
  close_out oc;
  Ledger.append ~dir (record 2);
  let { Ledger.records; dropped } = Ledger.read ~dir in
  Alcotest.(check int) "parseable records kept" 2 (List.length records);
  Alcotest.(check int) "corrupt line dropped" 1 dropped

let test_ledger_concurrent_appends () =
  (* two child processes hammering the same ledger: O_APPEND single-write
     atomicity means every line still parses — no byte interleaving *)
  let dir = fresh_dir () in
  let per_child = 25 in
  let child tag =
    match Unix.fork () with
    | 0 ->
        for i = 1 to per_child do
          (* bulk the record up so a torn/interleaved write would be
             visible even with kernel write coalescing *)
          Ledger.append ~dir
            (J.Obj
               [
                 ("schema", J.Int Ledger.schema_version);
                 ("ts", J.Float (float_of_int i));
                 ("cmd", J.String tag);
                 ("pad", J.String (String.make 512 (String.get tag 0)));
               ])
        done;
        Stdlib.exit 0
    | pid -> pid
  in
  let pids = [ child "aaaa"; child "bbbb" ] in
  List.iter
    (fun pid ->
      match Unix.waitpid [] pid with
      | _, Unix.WEXITED 0 -> ()
      | _ -> Alcotest.fail "appender child failed")
    pids;
  let { Ledger.records; dropped } = Ledger.read ~dir in
  Alcotest.(check int) "all records landed" (2 * per_child) (List.length records);
  Alcotest.(check int) "no interleaved garbage" 0 dropped

let test_source_digest () =
  let d1 = Ledger.source_digest [ ("a.py", "x = 1"); ("b.py", "y = 2") ] in
  let d2 = Ledger.source_digest [ ("b.py", "y = 2"); ("a.py", "x = 1") ] in
  let d3 = Ledger.source_digest [ ("a.py", "x = 9"); ("b.py", "y = 2") ] in
  Alcotest.(check string) "order independent" d1 d2;
  Alcotest.(check bool) "content sensitive" true (d1 <> d3)

(* ---------------- OpenMetrics ---------------- *)

let sample_metrics () =
  [
    Openmetrics.Counter
      { name = "namer_scan_files"; help = "files scanned"; labels = []; value = 42.0 };
    Openmetrics.Gauge
      {
        name = "namer_stage_wall_ms";
        help = "per-stage wall";
        labels = [ ("stage", "pair-mining") ];
        value = 12.5;
      };
    Openmetrics.Gauge
      {
        name = "namer_stage_wall_ms";
        help = "per-stage wall";
        labels = [ ("stage", "scan") ];
        value = 3.25;
      };
    Openmetrics.Summary
      {
        name = "namer_parse_ms";
        help = "per-file parse latency";
        quantiles = [ (0.5, 1.0); (0.9, 2.0); (0.99, 4.0) ];
        sum = 123.0;
        count = 100;
      };
  ]

let test_openmetrics_render_valid () =
  let text = Openmetrics.render (sample_metrics ()) in
  (match Openmetrics.validate text with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("render should validate: " ^ e ^ "\n" ^ text));
  let has needle =
    let n = String.length needle and m = String.length text in
    let rec go i = i + n <= m && (String.sub text i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "counter gets _total" true (has "namer_scan_files_total 42.0");
  Alcotest.(check bool) "one TYPE line per family" true
    (has "# TYPE namer_stage_wall_ms gauge");
  Alcotest.(check bool) "summary quantiles" true
    (has "namer_parse_ms{quantile=\"0.5\"} 1.0");
  Alcotest.(check bool) "summary count" true (has "namer_parse_ms_count 100.0");
  let lines = String.split_on_char '\n' (String.trim text) in
  Alcotest.(check string) "ends with EOF" "# EOF" (List.nth lines (List.length lines - 1))

let test_openmetrics_label_escaping () =
  let metrics =
    [
      Openmetrics.Gauge
        {
          name = "namer_weird";
          help = "label escape";
          labels = [ ("file", "a\\b\"c\nd") ];
          value = 1.0;
        };
    ]
  in
  let text = Openmetrics.render metrics in
  (match Openmetrics.validate text with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("escaped labels should validate: " ^ e));
  let has needle =
    let n = String.length needle and m = String.length text in
    let rec go i = i + n <= m && (String.sub text i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "backslash, quote and newline escaped" true
    (has "{file=\"a\\\\b\\\"c\\nd\"}")

let test_openmetrics_name_sanitization () =
  let m =
    Openmetrics.Counter
      { name = "scan.files-skipped"; help = "h"; labels = []; value = 1.0 }
  in
  Alcotest.(check string) "dots and dashes become underscores"
    "scan_files_skipped" (Openmetrics.metric_name m);
  match Openmetrics.validate (Openmetrics.render [ m ]) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_openmetrics_validate_rejects () =
  let reject what text =
    match Openmetrics.validate text with
    | Ok () -> Alcotest.fail (what ^ ": should be rejected")
    | Error _ -> ()
  in
  reject "missing EOF" "# HELP a b\n# TYPE a counter\na_total 1.0\n";
  reject "EOF not last" "# EOF\na 1.0\n";
  reject "bad value" "a one\n# EOF\n";
  reject "unterminated label" "a{b=\"x 1.0\n# EOF\n";
  reject "blank line" "a 1.0\n\n# EOF\n"

let test_openmetrics_from_registry () =
  let module T = Namer_telemetry.Telemetry in
  T.reset ();
  T.set_sink T.Memory;
  Fun.protect
    ~finally:(fun () ->
      T.set_sink T.Null;
      T.reset ())
    (fun () ->
      T.count ~by:7 "scan.files_skipped";
      T.observe "parse_ms_per_file" 1.5;
      T.observe "parse_ms_per_file" 2.5;
      T.with_span "pair-mining" (fun () -> ());
      match Openmetrics.of_metrics_json (T.metrics_json ()) with
      | Error e -> Alcotest.fail e
      | Ok metrics ->
          let text = Openmetrics.render metrics in
          (match Openmetrics.validate text with
          | Ok () -> ()
          | Error e -> Alcotest.fail ("registry exposition invalid: " ^ e));
          let has needle =
            let n = String.length needle and m = String.length text in
            let rec go i = i + n <= m && (String.sub text i n = needle || go (i + 1)) in
            go 0
          in
          Alcotest.(check bool) "counter mapped+sanitized" true
            (has "namer_scan_files_skipped_total 7.0");
          Alcotest.(check bool) "histogram mapped to summary" true
            (has "namer_parse_ms_per_file{quantile=\"0.5\"}");
          Alcotest.(check bool) "stage gauge labeled" true
            (has "namer_stage_wall_ms{stage=\"pair-mining\"}"))

(* ---------------- events ---------------- *)

let with_event_log ?min_level f =
  let dir = fresh_dir () in
  let path = Filename.concat dir "events.jsonl" in
  Events.set_sink ?min_level (Some (`File path));
  Fun.protect ~finally:(fun () -> Events.close ()) (fun () -> f ());
  Events.close ();
  let lines =
    read_file path |> String.split_on_char '\n'
    |> List.filter (fun l -> String.trim l <> "")
  in
  List.map
    (fun l ->
      match J.parse l with
      | Ok (J.Obj fields) -> fields
      | Ok _ -> Alcotest.fail "event is not a JSON object"
      | Error e -> Alcotest.fail ("event line is not JSON: " ^ e))
    lines

let field name fields =
  match List.assoc_opt name fields with
  | Some v -> v
  | None -> Alcotest.fail ("event missing field " ^ name)

let str = function J.String s -> s | _ -> Alcotest.fail "expected string"

let test_events_levels_and_shape () =
  let events =
    with_event_log ~min_level:Events.Info (fun () ->
        Events.emit Events.Debug "below-threshold";
        Events.emit ~fields:[ ("n", J.Int 3) ] Events.Info "kept";
        Events.emit Events.Error "also-kept")
  in
  Alcotest.(check int) "debug filtered by min level" 2 (List.length events);
  let first = List.hd events in
  Alcotest.(check string) "event name" "kept" (str (field "event" first));
  Alcotest.(check string) "level" "info" (str (field "level" first));
  Alcotest.(check bool) "custom field" true (field "n" first = J.Int 3);
  (* trace and span ids always present *)
  ignore (str (field "trace" first));
  ignore (str (field "span" first))

let test_events_child_ctx () =
  let events =
    with_event_log (fun () ->
        Events.emit Events.Info "parent";
        let c = Events.current () in
        Events.with_ctx (Events.child c) (fun () -> Events.emit Events.Info "child");
        Events.emit Events.Info "parent-again")
  in
  match events with
  | [ p1; c; p2 ] ->
      Alcotest.(check string) "same trace" (str (field "trace" p1)) (str (field "trace" c));
      Alcotest.(check bool) "child gets fresh span" true
        (str (field "span" c) <> str (field "span" p1));
      Alcotest.(check string) "ctx restored after with_ctx"
        (str (field "span" p1)) (str (field "span" p2))
  | _ -> Alcotest.fail "expected three events"

let test_pool_span_propagation () =
  (* acceptance: under jobs=4 the event log carries distinct per-task span
     contexts within one trace, and the sharded result is identical to the
     sequential one *)
  let module Pool = Namer_parallel.Pool in
  let module Acc = Namer_parallel.Accumulator in
  let xs = List.init 64 (fun i -> i) in
  let f shard = List.map (fun x -> x * x) shard in
  let sequential = Acc.sharded_map ~shards:8 f xs in
  let parallel_result = ref [] in
  let events =
    with_event_log (fun () ->
        Pool.run ~jobs:4 (fun pool ->
            parallel_result := Acc.sharded_map ?pool ~shards:8 f xs))
  in
  Alcotest.(check bool) "reports byte-identical across jobs" true
    (sequential = !parallel_result);
  let shard_events =
    List.filter (fun e -> str (field "event" e) = "pool.shard") events
  in
  Alcotest.(check int) "one event per shard" 8 (List.length shard_events);
  let traces =
    List.sort_uniq compare (List.map (fun e -> str (field "trace" e)) shard_events)
  in
  Alcotest.(check int) "one trace across all domains" 1 (List.length traces);
  let spans =
    List.sort_uniq compare (List.map (fun e -> str (field "span" e)) shard_events)
  in
  Alcotest.(check int) "every task runs under its own span" 8 (List.length spans)

(* ---------------- trend / report ---------------- *)

let trend_record ~ts ~cmd ~wall ~hits ~misses =
  J.Obj
    [
      ("schema", J.Int Ledger.schema_version);
      ("ts", J.Float ts);
      ("cmd", J.String cmd);
      ("git", J.String "deadbee");
      ( "stages",
        J.Obj
          [
            ( "scan",
              J.Obj
                [ ("count", J.Int 1); ("wall_ms", J.Float wall); ("alloc_mb", J.Float 1.0) ]
            );
          ] );
      ("cache", J.Obj [ ("hits", J.Int hits); ("misses", J.Int misses) ]);
      ("skipped", J.Int 0);
      ("peak_rss_kb", J.Int 1024);
    ]

let test_trend_rows_and_table () =
  let records =
    [
      trend_record ~ts:1.0 ~cmd:"scan" ~wall:100.0 ~hits:0 ~misses:10;
      trend_record ~ts:2.0 ~cmd:"scan" ~wall:110.0 ~hits:9 ~misses:1;
      J.Obj [ ("schema", J.Int 999); ("ts", J.Float 3.0); ("cmd", J.String "scan") ];
    ]
  in
  let rows = Trend.rows_of_records records in
  Alcotest.(check int) "unknown schema tolerated" 2 (List.length rows);
  let r2 = List.nth rows 1 in
  (match Trend.hit_rate r2 with
  | Some h -> Alcotest.(check bool) "hit rate computed" true (abs_float (h -. 0.9) < 1e-9)
  | None -> Alcotest.fail "hit rate expected");
  let table = Trend.table rows in
  Alcotest.(check bool) "table mentions the command" true
    (String.length table > 0
    &&
    let rec has i =
      i + 4 <= String.length table && (String.sub table i 4 = "scan" || has (i + 1))
    in
    has 0)

(* A [train --merge] run lands in the ledger as cmd:"merge" with its own
   fields (partials_in, partial hashes).  The trend table must render it
   like any other subcommand, and the extra fields must not confuse the
   row parser or the regression gate. *)
let test_trend_merge_row () =
  let merge_record ~ts ~wall =
    match trend_record ~ts ~cmd:"merge" ~wall ~hits:0 ~misses:0 with
    | J.Obj fields ->
        J.Obj
          (fields
          @ [
              ("partials_in", J.Int 2);
              ("partials", J.List [ J.String "aaaa"; J.String "bbbb" ]);
              ("model_hash", J.String "cccc");
            ])
    | _ -> assert false
  in
  let records =
    [
      merge_record ~ts:1.0 ~wall:100.0;
      merge_record ~ts:2.0 ~wall:104.0;
      trend_record ~ts:3.0 ~cmd:"scan" ~wall:50.0 ~hits:9 ~misses:1;
    ]
  in
  let rows = Trend.rows_of_records records in
  Alcotest.(check int) "merge rows parse alongside scan rows" 3 (List.length rows);
  let table = Trend.table rows in
  let has needle =
    let n = String.length needle and m = String.length table in
    let rec go i = i + n <= m && (String.sub table i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "table renders the merge command" true (has "merge");
  match Trend.check rows with
  | Ok () -> ()
  | Error msgs ->
      Alcotest.fail ("steady merge history flagged: " ^ String.concat "; " msgs)

let test_trend_check_gate () =
  let steady =
    [
      trend_record ~ts:1.0 ~cmd:"scan" ~wall:100.0 ~hits:8 ~misses:2;
      trend_record ~ts:2.0 ~cmd:"scan" ~wall:105.0 ~hits:8 ~misses:2;
      trend_record ~ts:3.0 ~cmd:"scan" ~wall:102.0 ~hits:8 ~misses:2;
    ]
  in
  (match Trend.check (Trend.rows_of_records steady) with
  | Ok () -> ()
  | Error msgs -> Alcotest.fail ("steady history flagged: " ^ String.concat "; " msgs));
  let regressed =
    steady @ [ trend_record ~ts:4.0 ~cmd:"scan" ~wall:300.0 ~hits:0 ~misses:10 ]
  in
  (match Trend.check (Trend.rows_of_records regressed) with
  | Ok () -> Alcotest.fail "3x wall regression not flagged"
  | Error msgs ->
      Alcotest.(check bool) "wall and hit-rate regressions both reported" true
        (List.length msgs >= 2));
  (* single runs have no history: never flagged *)
  match Trend.check (Trend.rows_of_records [ List.hd steady ]) with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "single run flagged with no baseline"

let suite =
  [
    Alcotest.test_case "ledger roundtrip" `Quick test_ledger_roundtrip;
    Alcotest.test_case "ledger torn-line recovery" `Quick test_ledger_torn_line_recovery;
    Alcotest.test_case "ledger corrupt middle line" `Quick test_ledger_corrupt_middle_line;
    Alcotest.test_case "ledger concurrent appends" `Quick test_ledger_concurrent_appends;
    Alcotest.test_case "source digest" `Quick test_source_digest;
    Alcotest.test_case "openmetrics render valid" `Quick test_openmetrics_render_valid;
    Alcotest.test_case "openmetrics label escaping" `Quick test_openmetrics_label_escaping;
    Alcotest.test_case "openmetrics name sanitization" `Quick test_openmetrics_name_sanitization;
    Alcotest.test_case "openmetrics validate rejects" `Quick test_openmetrics_validate_rejects;
    Alcotest.test_case "openmetrics from registry" `Quick test_openmetrics_from_registry;
    Alcotest.test_case "events levels and shape" `Quick test_events_levels_and_shape;
    Alcotest.test_case "events child context" `Quick test_events_child_ctx;
    Alcotest.test_case "pool span propagation" `Quick test_pool_span_propagation;
    Alcotest.test_case "trend rows and table" `Quick test_trend_rows_and_table;
    Alcotest.test_case "trend renders merge rows" `Quick test_trend_merge_row;
    Alcotest.test_case "trend check gate" `Quick test_trend_check_gate;
  ]
