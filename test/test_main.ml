(* Aggregated test runner for the Namer reproduction. *)

let () =
  Alcotest.run "namer"
    [
      ("util", Test_util.suite);
      ("telemetry", Test_telemetry.suite);
      ("obs", Test_obs.suite);
      ("parallel", Test_parallel.suite);
      ("datalog", Test_datalog.suite);
      ("tree", Test_tree.suite);
      ("pylang", Test_pylang.suite);
      ("javalang", Test_javalang.suite);
      ("lexer_golden", Test_lexer_golden.suite);
      ("analysis", Test_analysis.suite);
      ("namepath", Test_namepath.suite);
      ("pattern", Test_pattern.suite);
      ("mining", Test_mining.suite);
      ("ml", Test_ml.suite);
      ("nn", Test_nn.suite);
      ("classifier", Test_classifier.suite);
      ("corpus", Test_corpus.suite);
      ("baselines", Test_baselines.suite);
      ("userstudy", Test_userstudy.suite);
      ("core", Test_core.suite);
      ("streaming", Test_streaming.suite);
      ("model", Test_model.suite);
      ("partial_model", Test_partial_model.suite);
      ("fixer", Test_fixer.suite);
      ("fuzz", Test_fuzz.suite);
      ("serve", Test_serve.suite);
    ]
