(* Tests for Namer_parallel: deque LIFO/FIFO discipline, pool submit/join
   under contention, exception propagation, work-stealing smoke, shard-plan
   determinism properties, and the headline guarantee — a jobs=4 build is
   byte-identical to the jobs=1 build on the same corpus. *)

module Pool = Namer_parallel.Pool
module Shard = Namer_parallel.Shard
module Accumulator = Namer_parallel.Accumulator
module Counter = Namer_util.Counter
module Corpus = Namer_corpus.Corpus
module Namer = Namer_core.Namer
module Pattern = Namer_pattern.Pattern

let with_pool ~domains f =
  let pool = Pool.create ~domains () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

(* ---------------- deque ---------------- *)

let test_deque_discipline () =
  let d = Pool.Deque.create () in
  List.iter (Pool.Deque.push_bottom d) [ 1; 2; 3; 4 ];
  Alcotest.(check int) "length" 4 (Pool.Deque.length d);
  (* owner end is LIFO *)
  Alcotest.(check (option int)) "pop_bottom newest" (Some 4) (Pool.Deque.pop_bottom d);
  (* thief end is FIFO *)
  Alcotest.(check (option int)) "steal_top oldest" (Some 1) (Pool.Deque.steal_top d);
  Alcotest.(check (option int)) "steal_top next" (Some 2) (Pool.Deque.steal_top d);
  Alcotest.(check (option int)) "pop_bottom last" (Some 3) (Pool.Deque.pop_bottom d);
  Alcotest.(check (option int)) "empty pop" None (Pool.Deque.pop_bottom d);
  Alcotest.(check (option int)) "empty steal" None (Pool.Deque.steal_top d)

let test_deque_growth () =
  let d = Pool.Deque.create () in
  for i = 1 to 1000 do
    Pool.Deque.push_bottom d i
  done;
  let stolen = ref [] in
  let rec drain () =
    match Pool.Deque.steal_top d with
    | Some x ->
        stolen := x :: !stolen;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "steals preserve push order"
    (List.init 1000 (fun i -> i + 1))
    (List.rev !stolen)

(* ---------------- pool ---------------- *)

let test_pool_submit_join () =
  with_pool ~domains:3 @@ fun pool ->
  let futs = List.init 200 (fun i -> Pool.submit pool (fun () -> i * i)) in
  let results = List.map Pool.await futs in
  Alcotest.(check (list int)) "200 tasks under contention"
    (List.init 200 (fun i -> i * i))
    results;
  Alcotest.(check int) "all tasks executed" 200
    (Array.fold_left ( + ) 0 (Pool.executed pool))

let test_pool_map_list_order () =
  with_pool ~domains:4 @@ fun pool ->
  (* uneven task durations: results must still come back in input order *)
  let xs = List.init 50 (fun i -> i) in
  let ys =
    Pool.map_list pool
      (fun i ->
        let spin = if i mod 7 = 0 then 10_000 else 10 in
        let acc = ref 0 in
        for _ = 1 to spin do
          incr acc
        done;
        ignore !acc;
        i * 2)
      xs
  in
  Alcotest.(check (list int)) "input order" (List.map (fun i -> i * 2) xs) ys

let test_pool_exception () =
  with_pool ~domains:2 @@ fun pool ->
  let fut = Pool.submit pool (fun () -> failwith "task blew up") in
  Alcotest.check_raises "await re-raises" (Failure "task blew up") (fun () ->
      ignore (Pool.await fut));
  (* the pool survives a failed task *)
  Alcotest.(check int) "pool still works" 7 (Pool.await (Pool.submit pool (fun () -> 7)))

let test_pool_stealing () =
  with_pool ~domains:4 @@ fun pool ->
  (* pin every task to worker 0: the only way others execute is stealing *)
  let futs =
    List.init 100 (fun i ->
        Pool.submit ~on:0 pool (fun () ->
            let acc = ref 0 in
            for _ = 1 to 5000 do
              incr acc
            done;
            !acc + i))
  in
  List.iteri
    (fun i r -> Alcotest.(check int) "pinned task result" (5000 + i) r)
    (List.map Pool.await futs);
  let executed = Pool.executed pool in
  Alcotest.(check int) "every task ran" 100 (Array.fold_left ( + ) 0 executed)

let test_run_sequential_path () =
  Pool.run ~jobs:1 (fun pool ->
      Alcotest.(check bool) "jobs=1 gives no pool" true (pool = None));
  Pool.run ~jobs:3 (fun pool ->
      match pool with
      | None -> Alcotest.fail "jobs=3 must give a pool"
      | Some p -> Alcotest.(check int) "pool size" 3 (Pool.size p))

(* ---------------- shards ---------------- *)

let test_shard_concat_identity () =
  let xs = List.init 37 string_of_int in
  List.iter
    (fun shards ->
      Alcotest.(check (list string))
        (Printf.sprintf "concat of %d shards = input" shards)
        xs
        (List.concat (Shard.contiguous ~shards xs)))
    [ 1; 2; 3; 5; 16; 64 ]

let test_shard_by_key_runs () =
  (* files grouped by repo: no shard may split a repo run *)
  let xs =
    List.concat_map
      (fun r -> List.init 5 (fun i -> (Printf.sprintf "repo%d" r, i)))
      [ 0; 1; 2; 3; 4; 5 ]
  in
  let plan = Shard.contiguous_by_key ~shards:4 ~key:fst xs in
  Alcotest.(check (list (pair string int))) "concat = input" xs (List.concat plan);
  List.iter
    (fun shard ->
      let repos = List.sort_uniq compare (List.map fst shard) in
      (* each repo appears in exactly one shard *)
      List.iter
        (fun repo ->
          let holders =
            List.filter (fun s -> List.exists (fun (r, _) -> r = repo) s) plan
          in
          Alcotest.(check int) (repo ^ " in one shard") 1 (List.length holders))
        repos)
    plan

let prop_shard_merge_deterministic =
  QCheck.Test.make ~name:"parallel: counter reduce independent of shard count"
    ~count:50
    QCheck.(pair (small_list small_string) (int_range 1 32))
    (fun (words, shards) ->
      let reduce ~shards =
        let module C = struct
          type t = string Counter.t

          let empty () = Counter.create ()
          let merge = Counter.merge
        end in
        let c =
          Accumulator.sharded_reduce
            (module C)
            ~shards
            (fun ws ->
              let c = Counter.create () in
              List.iter (Counter.add c) ws;
              c)
            words
        in
        List.sort compare (Counter.fold (fun w n acc -> (w, n) :: acc) c [])
      in
      reduce ~shards = reduce ~shards:1)

let prop_shard_concat_map_order =
  QCheck.Test.make ~name:"parallel: sharded_concat_map preserves order" ~count:50
    QCheck.(pair (small_list small_int) (int_range 1 16))
    (fun (xs, shards) ->
      Accumulator.sharded_concat_map ~shards (List.map (fun x -> x + 1)) xs
      = List.map (fun x -> x + 1) xs)

(* ---------------- end-to-end byte equality ---------------- *)

let render_reports (t : Namer.t) =
  Array.to_list t.Namer.violations
  |> List.map (fun (v : Namer.violation) ->
         Printf.sprintf "%s:%d %s %s->%s [%s]"
           v.Namer.v_stmt.Namer.sctx.Namer_classifier.Features.file
           v.Namer.v_stmt.Namer.line
           (String.concat ","
              (List.map string_of_float (Array.to_list v.Namer.v_features)))
           v.Namer.v_info.Pattern.found v.Namer.v_info.Pattern.suggested
           (Namer.describe_fix v))
  |> String.concat "\n"

let test_jobs_byte_equality () =
  let corpus =
    Corpus.generate { (Corpus.default_config Corpus.Python) with Corpus.n_repos = 8 }
  in
  let build ~jobs =
    (* cap_domains off: on a 1-core runner the cap would collapse jobs=4 to
       the inline path, and this test exists to exercise real worker
       domains — shard-local interner tables, the remap merge, and the
       frozen global table — against the sequential build. *)
    Namer.build
      { Namer.default_config with Namer.use_classifier = false; jobs; cap_domains = false }
      corpus
  in
  let seq = build ~jobs:1 and par = build ~jobs:4 in
  Alcotest.(check int) "same pattern count"
    (Pattern.Store.size seq.Namer.store)
    (Pattern.Store.size par.Namer.store);
  Alcotest.(check int) "same violation count"
    (Array.length seq.Namer.violations)
    (Array.length par.Namer.violations);
  Alcotest.(check string) "byte-identical reports (features included)"
    (render_reports seq) (render_reports par);
  Alcotest.(check int) "same aggregate stmt totals" seq.Namer.n_stmts par.Namer.n_stmts

let suite =
  [
    Alcotest.test_case "deque LIFO/FIFO discipline" `Quick test_deque_discipline;
    Alcotest.test_case "deque growth and drain" `Quick test_deque_growth;
    Alcotest.test_case "pool submit/join under contention" `Quick test_pool_submit_join;
    Alcotest.test_case "map_list keeps input order" `Quick test_pool_map_list_order;
    Alcotest.test_case "exception propagation" `Quick test_pool_exception;
    Alcotest.test_case "work stealing drains a pinned worker" `Quick test_pool_stealing;
    Alcotest.test_case "run: sequential vs pooled path" `Quick test_run_sequential_path;
    Alcotest.test_case "shard concat identity" `Quick test_shard_concat_identity;
    Alcotest.test_case "sharding never splits a key run" `Quick test_shard_by_key_runs;
    QCheck_alcotest.to_alcotest prop_shard_merge_deterministic;
    QCheck_alcotest.to_alcotest prop_shard_concat_map_order;
    Alcotest.test_case "jobs=1 ≡ jobs=4 on a corpus" `Slow test_jobs_byte_equality;
  ]
