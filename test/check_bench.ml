(* Bench-regression gate (the @bench-smoke alias): compares a freshly
   measured BENCH_pipeline.json against the committed baseline and fails
   if any pipeline stage's wall clock regressed more than 3x (plus a 50 ms
   absolute floor, so microsecond stages don't trip on noise), if the
   fresh run's jobs=1 / jobs=N reports diverged, if the fresh parallel
   speedup dropped below 1.0 (a jobs=N build must never be slower than
   jobs=1 — skipped with a notice when the run's effective parallel jobs
   is 1, e.g. on a 1-core container where both configurations are the
   same program), or if the fresh build's allocation regressed more than
   1.5x over the committed baseline (the hash-consed hot path is an
   allocation win; this keeps it one).

   Schema-4 runs additionally gate the train-once / scan-many path:
   loading a model snapshot must be >= 10x faster than the cold build it
   replaces, and the warm cached scan must hit on every file, parse
   nothing, and reproduce the uncached reports byte-identically.

   Schema-5 runs additionally gate the serve daemon's load test (zero
   failed requests, all responses identical, rps > 0) and — on a real
   multicore machine (cores >= 4, effective jobs >= 4) — require the
   jobs=4 build to be at least 2x faster than jobs=1; on smaller
   machines the scaling gate is skipped with a notice.

   Schema-6 runs additionally gate the paper-scale streaming section:
   scanning the full generated corpus must report byte-identically to the
   jobs=1 half scan baseline, sustain a positive files/sec, keep the
   in-flight source gauge bounded by the worker count (never the corpus),
   and keep the top-heap high-water ratios across a 2x corpus doubling
   bounded: the scan retains only reports so it must stay flat
   (<= 1.35x); training retains every file's digest for mining, so its
   heap may grow at most linearly (<= 2.3x) — anything above that means
   the frontend is retaining sources, not just digests.  The multicore
   scaling gate also tightens from 2x to 2.5x on schema-6 runs.

   Schema-7 runs additionally gate incremental training: the model
   finalized from merged half-corpus partials must scan the corpus
   byte-identically to the directly-trained one (the merge-algebra
   contract train(A+B) ≡ merge(train A, train B) at bench scale), and
   folding one new repo into an existing partial must be at least 5x
   faster than retraining from scratch — incrementality has to pay for
   its format.

   Accepts every baseline schema: the original flat stage map (schema 1)
   and the {schema: 2|..|7, stages, stages_parallel, ...} envelopes, so
   the gate keeps working across baseline refreshes.

   Usage: check_bench FRESH.json BASELINE.json *)

module J = Namer_util.Json

let fail fmt = Printf.ksprintf (fun msg -> prerr_endline ("FAIL: " ^ msg); exit 1) fmt

let read_json path =
  let content =
    try
      let ic = open_in_bin path in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      s
    with Sys_error e -> fail "cannot read %s: %s" path e
  in
  match J.parse content with
  | Ok j -> j
  | Error msg -> fail "%s is not valid JSON: %s" path msg

let assoc name = function
  | J.Obj fields -> List.assoc_opt name fields
  | _ -> None

let number = function
  | Some (J.Float f) -> Some f
  | Some (J.Int i) -> Some (float_of_int i)
  | _ -> None

(* stage name → field value, from any schema *)
let stage_field field path json =
  let stages =
    match assoc "schema" json with
    | Some (J.Int _) -> (
        match assoc "stages" json with
        | Some (J.Obj fields) -> fields
        | _ -> fail "%s: schema >= 2 but no stages object" path)
    | _ -> ( match json with J.Obj fields -> fields | _ -> fail "%s: not an object" path)
  in
  List.filter_map
    (fun (name, v) -> Option.map (fun f -> (name, f)) (number (assoc field v)))
    stages

let stage_walls = stage_field "wall_ms"

let () =
  let fresh_path, baseline_path =
    match Sys.argv with
    | [| _; f; b |] -> (f, b)
    | _ -> fail "usage: check_bench FRESH.json BASELINE.json"
  in
  let fresh = read_json fresh_path and baseline = read_json baseline_path in
  (match assoc "reports_identical" fresh with
  | Some (J.Bool false) ->
      fail "%s: jobs=1 and parallel reports diverged — determinism broken" fresh_path
  | _ -> ());
  let fresh_walls = stage_walls fresh_path fresh in
  if fresh_walls = [] then fail "%s records no stages" fresh_path;
  let regressions = ref [] in
  List.iter
    (fun (stage, base_ms) ->
      match List.assoc_opt stage fresh_walls with
      | None -> ()
      | Some fresh_ms ->
          let limit = (base_ms *. 3.0) +. 50.0 in
          if fresh_ms > limit then
            regressions :=
              Printf.sprintf "%s: %.1f ms vs baseline %.1f ms (limit %.1f ms)" stage
                fresh_ms base_ms limit
              :: !regressions)
    (stage_walls baseline_path baseline);
  if !regressions <> [] then
    fail "wall-clock regression >3x:\n  %s" (String.concat "\n  " (List.rev !regressions));
  (* the parallel build must at least break even with the sequential one —
     unless the run had no real parallelism to measure (effective jobs 1),
     in which case the ratio is noise and the gate is skipped, loudly *)
  let effective_jobs =
    match number (assoc "jobs_parallel_effective" fresh) with
    | Some e -> int_of_float e
    | None -> max_int (* old schema: provenance absent, assume parallel *)
  in
  (match number (assoc "speedup" fresh) with
  | Some _ when effective_jobs <= 1 ->
      Printf.printf
        "NOTICE: speedup gate skipped — effective parallel jobs is 1 on this machine\n"
  | Some s when s < 1.0 ->
      fail "%s: jobs=N speedup %.2fx < 1.0x — parallel build slower than sequential"
        fresh_path s
  | Some s -> Printf.printf "speedup: %.2fx (jobs=N vs jobs=1)\n" s
  | None -> ());
  let fresh_schema =
    match number (assoc "schema" fresh) with Some s -> int_of_float s | None -> 1
  in
  (* multicore scaling gate: on a machine with real parallelism available
     (4+ cores, jobs=4 uncapped), the parallel build must scale — break-
     even is not good enough when 4 domains are burning.  Only schema-5+
     runs carry a bench whose harness was tuned for this gate; schema-6
     runs (streaming frontend, cheaper digests) must clear 2.5x where
     schema-5 required 2x. *)
  (if fresh_schema >= 5 then
     let cores =
       match number (assoc "cores" fresh) with Some c -> int_of_float c | None -> 0
     in
     let floor = if fresh_schema >= 6 then 2.5 else 2.0 in
     match number (assoc "speedup" fresh) with
     | Some s when cores >= 4 && effective_jobs >= 4 ->
         if s < floor then
           fail
             "%s: jobs=%d build only %.2fx faster than jobs=1 on %d cores (gate: >= \
              %.1fx) — parallel scaling regressed"
             fresh_path effective_jobs s cores floor
         else
           Printf.printf "multicore scaling: %.2fx at jobs=%d on %d cores (gate >= %.1fx)\n"
             s effective_jobs cores floor
     | Some _ ->
         Printf.printf
           "NOTICE: >=%.1fx multicore scaling gate skipped — %d cores, effective jobs %d \
            (needs >= 4 of both)\n"
           floor cores effective_jobs
     | None -> ());
  (* schema >= 4: snapshot-load and scan-cache gates *)
  if fresh_schema >= 4 then begin
    let snapshot =
      match assoc "snapshot" fresh with
      | Some s -> s
      | None -> fail "%s: schema %d but no snapshot object" fresh_path fresh_schema
    in
    (match (number (assoc "load_speedup" snapshot), number (assoc "load_ms" snapshot))
     with
    | Some ratio, Some load_ms ->
        Printf.printf "snapshot load: %.2f ms, %.0fx faster than cold build\n" load_ms
          ratio;
        if ratio < 10.0 then
          fail
            "%s: snapshot load only %.1fx faster than cold build (gate: >= 10x) — \
             loading a model must beat re-training"
            fresh_path ratio
    | _ -> fail "%s: snapshot object lacks load_speedup/load_ms" fresh_path);
    let cache =
      match assoc "scan_cache" fresh with
      | Some s -> s
      | None -> fail "%s: schema %d but no scan_cache object" fresh_path fresh_schema
    in
    (match assoc "reports_identical" cache with
    | Some (J.Bool true) -> ()
    | _ ->
        fail "%s: warm cached scan reports differ from uncached scan — cache unsound"
          fresh_path);
    (match (number (assoc "warm_hits" cache), number (assoc "warm_misses" cache)) with
    | Some hits, Some misses when misses > 0.0 || hits <= 0.0 ->
        fail "%s: warm scan saw %d cache misses / %d hits — cache not persisting"
          fresh_path (int_of_float misses) (int_of_float hits)
    | Some hits, Some _ ->
        Printf.printf "scan cache: warm scan hit on all %d files\n" (int_of_float hits)
    | _ -> fail "%s: scan_cache object lacks warm_hits/warm_misses" fresh_path);
    match number (assoc "warm_parse_count" cache) with
    | Some n when n > 0.0 ->
        fail "%s: warm cached scan still parsed %d files — cache not short-circuiting"
          fresh_path (int_of_float n)
    | Some _ -> ()
    | None -> fail "%s: scan_cache object lacks warm_parse_count" fresh_path
  end;
  (* schema >= 5: serve-daemon load-test gates *)
  if fresh_schema >= 5 then begin
    let serve =
      match assoc "serve" fresh with
      | Some s -> s
      | None -> fail "%s: schema %d but no serve object" fresh_path fresh_schema
    in
    (match assoc "responses_identical" serve with
    | Some (J.Bool true) -> ()
    | _ ->
        fail
          "%s: concurrent serve responses diverged — requests over the same files \
           against one model must be identical"
          fresh_path);
    (match number (assoc "failed" serve) with
    | Some 0.0 -> ()
    | Some n -> fail "%s: %d serve requests failed" fresh_path (int_of_float n)
    | None -> fail "%s: serve object lacks failed" fresh_path);
    match
      ( number (assoc "rps" serve),
        number (assoc "p50_ms" serve),
        number (assoc "p99_ms" serve) )
    with
    | Some rps, Some p50, Some p99 when rps > 0.0 ->
        Printf.printf "serve: %.0f req/s, p50 %.2f ms, p99 %.2f ms\n" rps p50 p99
    | Some rps, _, _ -> fail "%s: serve rps %.2f not positive" fresh_path rps
    | _ -> fail "%s: serve object lacks rps/p50_ms/p99_ms" fresh_path
  end;
  (* schema >= 6: paper-scale streaming gates *)
  if fresh_schema >= 6 then begin
    let scale =
      match assoc "scale" fresh with
      | Some s -> s
      | None -> fail "%s: schema %d but no scale object" fresh_path fresh_schema
    in
    (match assoc "reports_identical" scale with
    | Some (J.Bool true) -> ()
    | _ ->
        fail
          "%s: scale scan reports at jobs=1 and jobs=N diverged — streaming broke \
           determinism"
          fresh_path);
    (match (number (assoc "files_per_sec" scale), number (assoc "files" scale)) with
    | Some fps, Some files when fps > 0.0 ->
        Printf.printf "scale: %d files scanned at %.0f files/s\n" (int_of_float files)
          fps
    | Some fps, _ -> fail "%s: scale files_per_sec %.2f not positive" fresh_path fps
    | _ -> fail "%s: scale object lacks files_per_sec/files" fresh_path);
    (* the streaming contract: doubling the corpus must not grow the peak
       heap — the top-heap watermark after the full pass stays within a
       noise margin of the half-pass watermark.  Training retains the
       corpus's digests for mining (O(n) by design), so its margin is
       looser; the scan retains only reports and must stay flat. *)
    (match number (assoc "scan_mem_ratio" scale) with
    | Some r when r > 1.35 ->
        fail
          "%s: scan top-heap grew %.2fx across a 2x corpus doubling (gate: <= 1.35x) \
           — the scan is no longer streaming"
          fresh_path r
    | Some r -> Printf.printf "scale: scan heap ratio across 2x corpus %.2fx (<= 1.35x)\n" r
    | None -> fail "%s: scale object lacks scan_mem_ratio" fresh_path);
    (match number (assoc "train_mem_ratio" scale) with
    | Some r when r > 2.3 ->
        fail
          "%s: train top-heap grew %.2fx across a 2x corpus doubling (gate: <= 2.3x, \
           i.e. at most linear in retained digests) — the build frontend is \
           retaining more than the digests"
          fresh_path r
    | Some r -> Printf.printf "scale: train heap ratio across 2x corpus %.2fx (<= 2.3x)\n" r
    | None -> fail "%s: scale object lacks train_mem_ratio" fresh_path);
    match (number (assoc "in_flight_sources_peak" scale), number (assoc "jobs" scale))
    with
    | Some peak, Some jobs when peak > 4.0 *. Float.max 1.0 jobs ->
        fail
          "%s: %d sources in flight at peak with %d jobs (gate: <= 4x jobs) — \
           sources are outliving their digests"
          fresh_path (int_of_float peak) (int_of_float jobs)
    | Some peak, Some _ ->
        Printf.printf "scale: %d sources in flight at peak\n" (int_of_float peak)
    | _ -> fail "%s: scale object lacks in_flight_sources_peak/jobs" fresh_path
  end;
  (* schema >= 7: incremental-training gates *)
  if fresh_schema >= 7 then begin
    let merge =
      match assoc "merge" fresh with
      | Some m -> m
      | None -> fail "%s: schema %d but no merge object" fresh_path fresh_schema
    in
    (match assoc "reports_identical" merge with
    | Some (J.Bool true) -> ()
    | _ ->
        fail
          "%s: the model finalized from merged partials reports differently from \
           the direct build — the merge algebra is broken"
          fresh_path);
    match
      (number (assoc "update_speedup" merge), number (assoc "update_ms" merge))
    with
    | Some ratio, Some update_ms ->
        Printf.printf
          "merge: update folded new files in %.0f ms, %.1fx faster than retrain\n"
          update_ms ratio;
        if ratio < 5.0 then
          fail
            "%s: incremental update only %.1fx faster than a full retrain (gate: >= \
             5x) — folding one repo into a partial must beat re-digesting the corpus"
            fresh_path ratio
    | _ -> fail "%s: merge object lacks update_speedup/update_ms" fresh_path
  end;
  (* build allocation: a schema>=2 baseline pins it; a 1.5x growth fails *)
  (match
     ( List.assoc_opt "build" (stage_field "alloc_mb" fresh_path fresh),
       List.assoc_opt "build" (stage_field "alloc_mb" baseline_path baseline) )
   with
  | Some fresh_mb, Some base_mb ->
      Printf.printf "build alloc: %.0f MB vs baseline %.0f MB (%+.0f%%)\n" fresh_mb base_mb
        (100.0 *. ((fresh_mb /. base_mb) -. 1.0));
      if fresh_mb > base_mb *. 1.5 then
        fail "build allocation regression: %.0f MB vs baseline %.0f MB (limit 1.5x)"
          fresh_mb base_mb
  | _ -> ());
  Printf.printf "OK: %d stages within 3x of baseline\n" (List.length fresh_walls)
