(* Crash-regression replayer (@fuzz-regress).

   Each argument is a reproducer spec from test/fuzz_regress/: a crasher
   found by the fuzz harness, minimized, and stored compactly — resource
   bombs minimize to megabytes of brackets, so the corpus keeps the
   generator, not the expansion.  Spec directives, one per line:

     lang python|java      target frontend
     raw TEXT              append TEXT
     repeat N TEXT         append TEXT N times
     nl                    append a newline
     # ...                 comment

   Replay drives each expanded source through the full model scan
   (digest -> match), the path the fuzzer exercises: the run fails if the
   pipeline crashes instead of containing the file as a skip. *)

module Namer = Namer_core.Namer
module Corpus = Namer_corpus.Corpus

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("fuzz-regress: " ^ m); exit 1) fmt

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file -> close_in ic; List.rev acc
  in
  go []

let expand path =
  let lang = ref None in
  let buf = Buffer.create 1024 in
  List.iter
    (fun line ->
      let line = String.trim line in
      if line = "" || line.[0] = '#' then ()
      else if line = "nl" then Buffer.add_char buf '\n'
      else
        match String.index_opt line ' ' with
        | None when line = "raw" -> ()
        | None -> fail "%s: bad directive %S" path line
        | Some sp -> (
            let cmd = String.sub line 0 sp in
            let rest = String.sub line (sp + 1) (String.length line - sp - 1) in
            match cmd with
            | "lang" -> (
                match rest with
                | "python" -> lang := Some Corpus.Python
                | "java" -> lang := Some Corpus.Java
                | l -> fail "%s: unknown lang %S" path l)
            | "raw" -> Buffer.add_string buf rest
            | "repeat" -> (
                match String.index_opt rest ' ' with
                | None -> fail "%s: repeat needs a count and text" path
                | Some sp2 ->
                    let n = int_of_string (String.sub rest 0 sp2) in
                    let text =
                      String.sub rest (sp2 + 1) (String.length rest - sp2 - 1)
                    in
                    for _ = 1 to n do
                      Buffer.add_string buf text
                    done)
            | c -> fail "%s: unknown directive %S" path c))
    (read_lines path);
  match !lang with
  | None -> fail "%s: no lang directive" path
  | Some lang -> (lang, Buffer.contents buf)

(* The smallest model that drives the real digest path: patterns are
   irrelevant to containment, the parse is what crashes. *)
let model_for =
  let cache = Hashtbl.create 2 in
  fun lang ->
    match Hashtbl.find_opt cache lang with
    | Some m -> m
    | None ->
        let cfg = { (Corpus.default_config lang) with Corpus.n_repos = 2 } in
        let t =
          Namer.build
            { Namer.default_config with Namer.use_classifier = false }
            (Corpus.generate cfg)
        in
        let m = Namer.model_of t in
        Hashtbl.replace cache lang m;
        m

let replay path =
  let lang, source = expand path in
  let file = { Corpus.repo = "regress"; path = Filename.basename path; source } in
  match Namer.scan_with_model ~jobs:1 (model_for lang) [ file ] with
  | sr ->
      let n_skipped = List.length sr.Namer.sr_skipped in
      if n_skipped <> 1 then
        fail "%s: expected the reproducer to be contained as 1 skipped file, got %d"
          path n_skipped;
      let sk = List.hd sr.Namer.sr_skipped in
      Printf.printf "contained %-24s (%d bytes): %s\n%!" (Filename.basename path)
        (String.length source) sk.Namer.sk_reason
  | exception e ->
      fail "%s: REGRESSION — crash escaped the scan: %s" path (Printexc.to_string e)

let () =
  let specs = List.tl (Array.to_list Sys.argv) in
  if specs = [] then fail "no spec files given";
  List.iter replay specs;
  Printf.printf "fuzz-regress: %d reproducers contained\n%!" (List.length specs)
