(* Model snapshots and the incremental scan cache: save → load → scan
   round-trips byte-identically at any jobs setting, damaged snapshot
   files are rejected with actionable errors, and a warm cache replays
   reports without re-parsing anything but the files that changed. *)

module Namer = Namer_core.Namer
module Corpus = Namer_corpus.Corpus
module Miner = Namer_mining.Miner
module Snapshot = Namer_model.Snapshot
module Telemetry = Namer_telemetry.Telemetry

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let corpus_cfg ?(seed = 11) () =
  {
    (Corpus.default_config Corpus.Python) with
    Corpus.n_repos = 8;
    files_per_repo = (4, 6);
    seed;
  }

let namer_cfg =
  {
    Namer.default_config with
    use_classifier = false;
    miner = { Miner.default_config with Miner.min_support = 5; min_path_freq = 3 };
  }

let built = lazy (Corpus.generate (corpus_cfg ()), Namer.build namer_cfg (Corpus.generate (corpus_cfg ())))
let corpus () = fst (Lazy.force built)
let namer () = snd (Lazy.force built)

let temp_dir prefix =
  let d = Filename.temp_file prefix "" in
  Sys.remove d;
  Sys.mkdir d 0o700;
  d

let model_path () = Filename.temp_file "test_model" ".nmdl"

let reports (r : Namer.scan_result) =
  Array.to_list r.Namer.sr_reports
  |> List.map (fun (x : Namer.report) ->
         Printf.sprintf "%s:%d:%s:%s:%s:%s" x.Namer.r_file x.Namer.r_line
           x.Namer.r_prefix x.Namer.r_found x.Namer.r_suggested x.Namer.r_kind)
  |> String.concat "\n"

(* -------- round trip -------- *)

let test_round_trip_identity () =
  let t = namer () and c = corpus () in
  let path = model_path () in
  let saved = Namer.save_model t ~path in
  let loaded = Namer.load_model ~path in
  Sys.remove path;
  check_string "hash survives the disk round trip" saved.Namer.m_hash
    loaded.Namer.m_hash;
  let in_mem = Namer.scan_with_model ~jobs:1 (Namer.model_of t) c.Corpus.files in
  let from_disk = Namer.scan_with_model ~jobs:1 loaded c.Corpus.files in
  check_bool "some reports to compare" true (Array.length in_mem.Namer.sr_reports > 0);
  check_string "loaded model scans byte-identically (jobs=1)" (reports in_mem)
    (reports from_disk);
  let par =
    Namer.scan_with_model ~jobs:4 ~cap_domains:false loaded c.Corpus.files
  in
  check_string "loaded model scans byte-identically (jobs=4)" (reports in_mem)
    (reports par)

let test_save_is_deterministic () =
  let t = namer () in
  let p1 = model_path () and p2 = model_path () in
  let m1 = Namer.save_model t ~path:p1 and m2 = Namer.save_model t ~path:p2 in
  let bytes p =
    let ic = open_in_bin p in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let b1 = bytes p1 and b2 = bytes p2 in
  Sys.remove p1;
  Sys.remove p2;
  check_string "same build serializes to the same hash" m1.Namer.m_hash m2.Namer.m_hash;
  check_bool "and to the same bytes" true (String.equal b1 b2)

(* -------- rejection -------- *)

let expect_error name f fragment =
  match f () with
  | (_ : Namer.model) -> Alcotest.failf "%s: load_model accepted a damaged file" name
  | exception Snapshot.Error msg ->
      check_bool
        (Printf.sprintf "%s: error mentions %S (got %S)" name fragment msg)
        true
        (let flen = String.length fragment and mlen = String.length msg in
         let rec scan i =
           i + flen <= mlen && (String.sub msg i flen = fragment || scan (i + 1))
         in
         scan 0)

let damaged_copy ~transform =
  let t = namer () in
  let path = model_path () in
  ignore (Namer.save_model t ~path);
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let oc = open_out_bin path in
  output_string oc (transform s);
  close_out oc;
  path

let test_rejects_truncated () =
  let path = damaged_copy ~transform:(fun s -> String.sub s 0 (String.length s / 2)) in
  expect_error "half file" (fun () -> Namer.load_model ~path) "truncated";
  let oc = open_out_bin path in
  output_string oc "NAME";
  close_out oc;
  expect_error "4-byte file" (fun () -> Namer.load_model ~path) "truncated";
  Sys.remove path

let test_rejects_corrupted () =
  let flip s =
    let b = Bytes.of_string s in
    let i = Bytes.length b / 2 in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xff));
    Bytes.to_string b
  in
  let path = damaged_copy ~transform:flip in
  expect_error "flipped byte" (fun () -> Namer.load_model ~path) "checksum";
  Sys.remove path

let test_rejects_bad_magic () =
  let path =
    damaged_copy ~transform:(fun s ->
        "NOTMODEL" ^ String.sub s 8 (String.length s - 8))
  in
  expect_error "bad magic" (fun () -> Namer.load_model ~path) "bad magic";
  Sys.remove path

let test_rejects_version_mismatch () =
  let bytes, _hash = Snapshot.encode ~magic:"NAMERMDL" ~version:99 [] in
  let path = model_path () in
  Snapshot.write ~path bytes;
  expect_error "future version" (fun () -> Namer.load_model ~path) "format version 99";
  expect_error "future version names the fix"
    (fun () -> Namer.load_model ~path)
    "re-run `namer train`";
  Sys.remove path

let test_rejects_missing_file () =
  expect_error "missing file"
    (fun () -> Namer.load_model ~path:"/nonexistent/model.nmdl")
    "cannot read"

(* Rewrite one section of a valid snapshot and re-encode the container
   (magic/version/checksum all pass): the error must name the damaged
   section, not just a byte offset into the file. *)
let with_replaced_section name payload =
  let t = namer () in
  let path = model_path () in
  ignore (Namer.save_model t ~path);
  let ic = open_in_bin path in
  let bytes = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let sections, _ =
    Snapshot.decode ~magic:"NAMERMDL" ~desc:"model snapshot" ~version:1 bytes
  in
  let sections =
    List.map (fun (n, pl) -> if n = name then (n, payload) else (n, pl)) sections
  in
  let bytes, _ = Snapshot.encode ~magic:"NAMERMDL" ~version:1 sections in
  Snapshot.write ~path bytes;
  path

let test_error_names_corrupt_section () =
  (* one pattern record announced, payload truncated mid-record *)
  let truncated =
    let w = Namer_model.Binio.W.create () in
    Namer_model.Binio.W.u32 w 1;
    Namer_model.Binio.W.u8 w 0;
    Namer_model.Binio.W.contents w
  in
  let path = with_replaced_section "patterns" truncated in
  expect_error "truncated patterns payload"
    (fun () -> Namer.load_model ~path)
    "\"patterns\" section is corrupt";
  Sys.remove path;
  let path = with_replaced_section "pairs" "\x02\x00\x00\x00" in
  expect_error "truncated pairs payload"
    (fun () -> Namer.load_model ~path)
    "\"pairs\" section is corrupt";
  Sys.remove path

let test_rejects_missing_section () =
  let t = namer () in
  let path = model_path () in
  ignore (Namer.save_model t ~path);
  let ic = open_in_bin path in
  let bytes = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let sections, _ =
    Snapshot.decode ~magic:"NAMERMDL" ~desc:"model snapshot" ~version:1 bytes
  in
  let bytes, _ =
    Snapshot.encode ~magic:"NAMERMDL" ~version:1
      (List.filter (fun (n, _) -> n <> "classifier") sections)
  in
  Snapshot.write ~path bytes;
  expect_error "dropped classifier section"
    (fun () -> Namer.load_model ~path)
    "missing its \"classifier\" section";
  Sys.remove path

(* -------- scan cache -------- *)

let scan_stage_count name =
  match List.find_opt (fun s -> s.Telemetry.stage = name) (Telemetry.stages ()) with
  | Some s -> s.Telemetry.s_count
  | None -> 0

let with_telemetry f =
  Telemetry.reset ();
  Telemetry.set_sink Telemetry.Memory;
  f ()

let test_cache_warm_replay () =
  let t = namer () and c = corpus () in
  let m = Namer.model_of t in
  let dir = temp_dir "test_cache" in
  let files = c.Corpus.files in
  let n = List.length files in
  let cold = Namer.scan_with_model ~jobs:1 ~cache_dir:dir m files in
  check_int "cold scan misses every file" n cold.Namer.sr_cache_misses;
  let warm = with_telemetry (fun () -> Namer.scan_with_model ~jobs:1 ~cache_dir:dir m files) in
  check_int "warm scan hits every file" n warm.Namer.sr_cache_hits;
  check_int "warm scan misses nothing" 0 warm.Namer.sr_cache_misses;
  check_int "warm scan parses nothing" 0 (scan_stage_count "parse");
  check_string "warm reports byte-identical to cold" (reports cold) (reports warm);
  let warm4 =
    Namer.scan_with_model ~jobs:4 ~cap_domains:false ~cache_dir:dir m files
  in
  check_string "warm reports identical at jobs=4" (reports cold) (reports warm4)

let test_cache_edit_one_file () =
  let t = namer () and c = corpus () in
  let m = Namer.model_of t in
  let dir = temp_dir "test_cache_edit" in
  let files = c.Corpus.files in
  ignore (Namer.scan_with_model ~jobs:1 ~cache_dir:dir m files);
  (* append a comment to exactly one file: new content digest, same code *)
  let edited =
    List.mapi
      (fun i (f : Corpus.file) ->
        if i = 0 then { f with Corpus.source = f.Corpus.source ^ "\n# touched\n" }
        else f)
      files
  in
  let rescan =
    with_telemetry (fun () -> Namer.scan_with_model ~jobs:1 ~cache_dir:dir m edited)
  in
  check_int "only the edited file misses" 1 rescan.Namer.sr_cache_misses;
  check_int "every other file hits" (List.length files - 1) rescan.Namer.sr_cache_hits;
  check_int "only the edited file re-parses" 1 (scan_stage_count "parse");
  let uncached = Namer.scan_with_model ~jobs:1 m edited in
  check_string "merged report equals an uncached scan" (reports uncached)
    (reports rescan)

let test_cache_invalidated_by_model_hash () =
  let t = namer () and c = corpus () in
  let m1 = Namer.model_of t in
  (* different training corpus → different patterns → different hash *)
  let t2 = Namer.build namer_cfg (Corpus.generate (corpus_cfg ~seed:99 ())) in
  let m2 = Namer.model_of t2 in
  check_bool "the two models hash differently" true
    (not (String.equal m1.Namer.m_hash m2.Namer.m_hash));
  let dir = temp_dir "test_cache_inval" in
  let files = c.Corpus.files in
  ignore (Namer.scan_with_model ~jobs:1 ~cache_dir:dir m1 files);
  let other = Namer.scan_with_model ~jobs:1 ~cache_dir:dir m2 files in
  check_int "a different model hash sees zero hits" 0 other.Namer.sr_cache_hits;
  check_int "and misses every file" (List.length files) other.Namer.sr_cache_misses

let test_cache_survives_garbage_entry () =
  let t = namer () and c = corpus () in
  let m = Namer.model_of t in
  let dir = temp_dir "test_cache_garbage" in
  let files = c.Corpus.files in
  let cold = Namer.scan_with_model ~jobs:1 ~cache_dir:dir m files in
  (* clobber one cache entry with garbage: it must degrade to a miss *)
  let model_dir = Filename.concat dir m.Namer.m_hash in
  let entries = Sys.readdir model_dir in
  let victim = Filename.concat model_dir entries.(0) in
  let oc = open_out_bin victim in
  output_string oc "not a snapshot";
  close_out oc;
  let warm = Namer.scan_with_model ~jobs:1 ~cache_dir:dir m files in
  check_int "garbage entry degrades to exactly one miss" 1 warm.Namer.sr_cache_misses;
  check_string "reports still byte-identical" (reports cold) (reports warm)

(* Concurrent writers racing on one cache entry (the serve daemon and a
   CLI scan populating the same key): publication is temp + rename, so a
   reader must only ever see a complete entry — never a torn interleaving
   and never a decode failure. *)
let test_cache_concurrent_stores_never_torn () =
  let module Scan_cache = Namer_core.Scan_cache in
  let dir = temp_dir "test_cache_race" in
  let entries =
    List.init 40 (fun i ->
        {
          Scan_cache.e_line = i + 1;
          e_prefix = Printf.sprintf "prefix_%d" i;
          e_found = "recieve";
          e_suggested = "receive";
          e_kind = "confusing-word";
        })
  in
  let model_hash = "feedfacefeedface" in
  let src_digest = String.make 32 'a' in
  let failures = ref [] in
  let lock = Mutex.create () in
  let worker _ =
    Thread.create
      (fun () ->
        try
          for _ = 1 to 25 do
            Scan_cache.store ~dir ~model_hash ~src_digest entries;
            match Scan_cache.find ~dir ~model_hash ~src_digest with
            | Some got when got = entries -> ()
            | Some _ -> failwith "torn entry read back"
            | None -> failwith "entry undecodable mid-race"
          done
        with e ->
          Mutex.lock lock;
          failures := Printexc.to_string e :: !failures;
          Mutex.unlock lock)
      ()
  in
  let threads = List.init 8 worker in
  List.iter Thread.join threads;
  check_string "no torn or undecodable reads under concurrent writers" ""
    (String.concat "; " !failures);
  match Scan_cache.find ~dir ~model_hash ~src_digest with
  | Some got -> check_bool "final entry intact" true (got = entries)
  | None -> Alcotest.fail "entry missing after the race"

let suite =
  [
    Alcotest.test_case "round trip: save → load → scan identical" `Quick
      test_round_trip_identity;
    Alcotest.test_case "save is deterministic" `Quick test_save_is_deterministic;
    Alcotest.test_case "rejects truncated snapshots" `Quick test_rejects_truncated;
    Alcotest.test_case "rejects corrupted snapshots" `Quick test_rejects_corrupted;
    Alcotest.test_case "rejects wrong magic" `Quick test_rejects_bad_magic;
    Alcotest.test_case "rejects version mismatch" `Quick test_rejects_version_mismatch;
    Alcotest.test_case "rejects missing file" `Quick test_rejects_missing_file;
    Alcotest.test_case "errors name the corrupt section" `Quick
      test_error_names_corrupt_section;
    Alcotest.test_case "rejects a missing section" `Quick
      test_rejects_missing_section;
    Alcotest.test_case "cache: warm replay hits everything" `Quick
      test_cache_warm_replay;
    Alcotest.test_case "cache: editing one file re-parses one file" `Quick
      test_cache_edit_one_file;
    Alcotest.test_case "cache: model hash change invalidates" `Quick
      test_cache_invalidated_by_model_hash;
    Alcotest.test_case "cache: garbage entry degrades to a miss" `Quick
      test_cache_survives_garbage_entry;
    Alcotest.test_case "cache: concurrent stores never torn" `Quick
      test_cache_concurrent_stores_never_torn;
  ]
