(* The fuzzing & fault-injection harness: mutation determinism, crash
   triage, per-file isolation under real and injected faults, the
   metamorphic oracles, and the jobs-1 / jobs-N golden differential. *)

module Fuzz = Namer_fuzz.Fuzz
module Mutate = Namer_fuzz.Mutate
module Triage = Namer_fuzz.Triage
module Oracles = Namer_fuzz.Oracles
module Fault = Namer_util.Fault
module Prng = Namer_util.Prng
module Namer = Namer_core.Namer
module Corpus = Namer_corpus.Corpus
module Miner = Namer_mining.Miner

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let contains hay needle =
  let n = String.length hay and m = String.length needle in
  let rec go i = i + m <= n && (String.sub hay i m = needle || go (i + 1)) in
  go 0

let corpus_cfg =
  {
    (Corpus.default_config Corpus.Python) with
    Corpus.n_repos = 4;
    files_per_repo = (4, 6);
    seed = 11;
  }

let build =
  lazy
    (let corpus = Corpus.generate corpus_cfg in
     let n_files = List.length corpus.Corpus.files in
     let cfg =
       {
         Namer.default_config with
         Namer.use_classifier = false;
         miner =
           {
             Miner.default_config with
             Miner.min_support = max 5 (n_files / 20);
             min_path_freq = max 3 (n_files / 50);
           };
       }
     in
     let t = Namer.build cfg corpus in
     (corpus, t, Namer.model_of t))

(* ---------------- mutation engine ---------------- *)

let mutant_trail seed =
  let rng = Prng.create seed in
  let src = "def resize(width, height):\n    total_width = width\n    return total_width\n" in
  List.init 30 (fun _ ->
      let m =
        Mutate.mutate ~rng ~pairs:[ ("width", "height") ] ~bomb_depth:50
          ~lang:Corpus.Python src
      in
      (Mutate.kind_name m.Mutate.m_kind, m.Mutate.m_desc, m.Mutate.m_source))

let test_mutation_deterministic () =
  check_bool "same seed, same 30-mutant trail" true (mutant_trail 7 = mutant_trail 7);
  check_bool "different seeds diverge" true (mutant_trail 7 <> mutant_trail 8)

let test_mutation_covers_palette () =
  let rng = Prng.create 3 in
  let src = "def resize(width, height):\n    total_width = width\n    return total_width\n" in
  let seen = Hashtbl.create 8 in
  for _ = 1 to 300 do
    let m =
      Mutate.mutate ~rng ~pairs:[ ("width", "height") ] ~bomb_depth:50
        ~lang:Corpus.Python src
    in
    Hashtbl.replace seen m.Mutate.m_kind ()
  done;
  List.iter
    (fun k ->
      check_bool (Mutate.kind_name k ^ " drawn in 300 iterations") true
        (Hashtbl.mem seen k))
    Mutate.all_kinds

(* ---------------- per-file isolation ---------------- *)

let clean_files =
  [
    { Corpus.repo = "r"; path = "a.py"; source = "alpha = 1\nbeta = alpha\n" };
    { Corpus.repo = "r"; path = "b.py"; source = "gamma = 2\ndelta = gamma\n" };
  ]

(* A genuine resource bomb: deep nesting overflows the recursive-descent
   parser.  The scan must drop the file, not the process. *)
let test_bomb_becomes_skipped_file () =
  let _, _, m = Lazy.force build in
  let bomb =
    { Corpus.repo = "r"; path = "bomb.py";
      source = "x = 1\n" ^ Mutate.nest_bomb ~lang:Corpus.Python ~depth:Mutate.default_bomb_depth }
  in
  let sr = Namer.scan_with_model ~jobs:1 m (bomb :: clean_files) in
  check_int "exactly the bomb is skipped" 1 (List.length sr.Namer.sr_skipped);
  let sk = List.hd sr.Namer.sr_skipped in
  check_string "skip names the bomb" "bomb.py" sk.Namer.sk_file;
  check_bool "reason is non-empty" true (String.length sk.Namer.sk_reason > 0)

let test_injected_parse_fault_skips_one_file () =
  let _, _, m = Lazy.force build in
  Fault.reset ();
  Fun.protect ~finally:Fault.reset @@ fun () ->
  Fault.arm "frontend.parse";
  let sr = Namer.scan_with_model ~jobs:1 m clean_files in
  check_int "one file skipped" 1 (List.length sr.Namer.sr_skipped);
  let sk = List.hd sr.Namer.sr_skipped in
  check_string "first file hit the armed fault" "a.py" sk.Namer.sk_file;
  check_bool "reason names the fault point" true
    (contains sk.Namer.sk_reason "frontend.parse");
  check_int "fault fired exactly once" 1 (Fault.fired ())

(* ---------------- scan-cache corruption ---------------- *)

let temp_dir prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  Sys.mkdir path 0o755;
  path

let test_corrupt_cache_entry_self_heals () =
  let corpus, _, m = Lazy.force build in
  let files = corpus.Corpus.files in
  let dir = temp_dir "namer_fuzz_cache" in
  Fault.reset ();
  Fun.protect ~finally:Fault.reset @@ fun () ->
  let cold = Namer.scan_with_model ~jobs:1 ~cache_dir:dir m files in
  let warm = Namer.scan_with_model ~jobs:1 ~cache_dir:dir m files in
  check_int "warm scan is all hits" (List.length files) warm.Namer.sr_cache_hits;
  Fault.arm "scan_cache.read";
  let hurt = Namer.scan_with_model ~jobs:1 ~cache_dir:dir m files in
  check_bool "corrupted entry degraded to a miss" true (hurt.Namer.sr_cache_misses >= 1);
  check_bool "reports identical through the corruption" true
    (hurt.Namer.sr_reports = cold.Namer.sr_reports)

(* ---------------- pool containment ---------------- *)

let test_pool_task_fault_contained () =
  let corpus, _, m = Lazy.force build in
  let files = corpus.Corpus.files in
  let baseline = Namer.scan_with_model ~jobs:4 ~cap_domains:false m files in
  Fault.reset ();
  Fun.protect ~finally:Fault.reset @@ fun () ->
  Fault.arm "pool.task";
  let hurt = Namer.scan_with_model ~jobs:4 ~cap_domains:false m files in
  check_int "fault fired" 1 (Fault.fired ());
  check_bool "scan completed byte-identically despite the poisoned task" true
    (hurt.Namer.sr_reports = baseline.Namer.sr_reports)

(* ---------------- metamorphic oracles ---------------- *)

let test_oracles_pass () =
  let corpus, t, m = Lazy.force build in
  let rng = Prng.create 5 in
  List.iter
    (fun (o : Oracles.result) ->
      check_bool (o.Oracles.o_name ^ ": " ^ o.Oracles.o_detail) true o.Oracles.o_pass)
    (Oracles.run_all ~rng ~t ~model:m ~files:corpus.Corpus.files
       ~commits:corpus.Corpus.commits)

(* The golden differential behind oracle 4, pinned at both ends of the
   parallelism range: self-mining build, jobs-1 model scan and jobs-4
   model scan must all tell the same story. *)
let test_model_scan_differential () =
  let corpus, t, m = Lazy.force build in
  let files = corpus.Corpus.files in
  let r1 = Namer.scan_with_model ~jobs:1 m files in
  let r4 = Namer.scan_with_model ~jobs:4 ~cap_domains:false m files in
  check_bool "jobs 1 = jobs 4" true (r1.Namer.sr_reports = r4.Namer.sr_reports);
  let o = Oracles.model_agreement t m files in
  check_bool ("build agrees with model scan: " ^ o.Oracles.o_detail) true
    o.Oracles.o_pass

(* ---------------- triage ---------------- *)

let test_bucket_stable_across_details () =
  let b1 = Triage.bucket ~lang:Corpus.Python ~exn_text:"Failure(\"parse error at line 123\")" in
  let b2 = Triage.bucket ~lang:Corpus.Python ~exn_text:"Failure(\"parse  error at\nline 7\")" in
  let b3 = Triage.bucket ~lang:Corpus.Java ~exn_text:"Failure(\"parse error at line 123\")" in
  let b4 = Triage.bucket ~lang:Corpus.Python ~exn_text:"Stack overflow" in
  check_string "same defect, same bucket" b1 b2;
  check_bool "language separates buckets" true (b1 <> b3);
  check_bool "different defect, different bucket" true (b1 <> b4);
  check_int "bucket id is 12 hex chars" 12 (String.length b1)

let test_minimizer_shrinks () =
  let filler = List.init 60 (fun i -> Printf.sprintf "line_%03d = %d" i i) in
  let src = String.concat "\n" (filler @ [ "trigger_BOOM_here = 1" ] @ filler) in
  let still_crashes candidate = contains candidate "BOOM" in
  let min = Triage.minimize ~still_crashes src in
  check_bool "minimized still crashes" true (still_crashes min);
  check_bool
    (Printf.sprintf "minimized to a fraction (%d of %d bytes)" (String.length min)
       (String.length src))
    true
    (String.length min * 10 < String.length src)

let test_crash_corpus_write () =
  let out = temp_dir "namer_fuzz_crashes" in
  let crash =
    {
      Triage.c_lang = Corpus.Python;
      c_exn = "Stack overflow";
      c_bucket = Triage.bucket ~lang:Corpus.Python ~exn_text:"Stack overflow";
      c_input = "bomb = ((((1))))\n";
      c_desc = "iter 3: append 4-deep nesting bomb";
      c_iter = 3;
    }
  in
  match Triage.write ~out crash with
  | None -> Alcotest.fail "write returned None"
  | Some path ->
      check_bool "reproducer written under its bucket" true
        (Sys.file_exists path
        && Filename.basename (Filename.dirname path) = crash.Triage.c_bucket);
      check_bool "info sidecar written" true
        (Sys.file_exists (Filename.remove_extension path ^ ".info"))

(* ---------------- the campaign driver ---------------- *)

let test_campaign_smoke () =
  let cfg =
    {
      (Fuzz.default_config Corpus.Python) with
      Fuzz.f_seed = 9;
      f_iters = 12;
      f_repos = 3;
      (* deep enough to exercise the bomb path, shallow enough to parse *)
      f_bomb_depth = 10_000;
    }
  in
  let s = Fuzz.run cfg in
  check_int "every iteration scanned a mutant" 12 s.Fuzz.s_mutants;
  check_int "no crashes" 0 (List.length s.Fuzz.s_crashes);
  check_bool "campaign green" true (Fuzz.ok s)

let suite =
  [
    Alcotest.test_case "mutations are seed-deterministic" `Quick test_mutation_deterministic;
    Alcotest.test_case "mutation palette fully drawn" `Quick test_mutation_covers_palette;
    Alcotest.test_case "nesting bomb degrades to a skipped file" `Slow
      test_bomb_becomes_skipped_file;
    Alcotest.test_case "injected parse fault skips one file" `Quick
      test_injected_parse_fault_skips_one_file;
    Alcotest.test_case "corrupt cache entry self-heals" `Quick
      test_corrupt_cache_entry_self_heals;
    Alcotest.test_case "poisoned pool task is contained" `Quick
      test_pool_task_fault_contained;
    Alcotest.test_case "metamorphic oracles pass" `Slow test_oracles_pass;
    Alcotest.test_case "build / model-scan differential (jobs 1 and 4)" `Slow
      test_model_scan_differential;
    Alcotest.test_case "crash buckets are stable" `Quick test_bucket_stable_across_details;
    Alcotest.test_case "minimizer shrinks while preserving the bucket" `Quick
      test_minimizer_shrinks;
    Alcotest.test_case "crash corpus layout" `Quick test_crash_corpus_write;
    Alcotest.test_case "campaign smoke (12 iterations)" `Slow test_campaign_smoke;
  ]
