(* Tests for Namer_util: subtoken splitting, edit distance, PRNG, counters,
   statistics, interner and table formatting. *)

open Namer_util

let check_sl = Alcotest.(check (list string))
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let check_bool = Alcotest.(check bool)
let checkf = Alcotest.(check (float 1e-9))

(* ---------------- Subtoken ---------------- *)

let test_split_camel () =
  check_sl "camelCase" [ "assert"; "True" ] (Subtoken.split "assertTrue");
  check_sl "lower camel" [ "rotate"; "Angle" ] (Subtoken.split "rotateAngle");
  check_sl "pascal" [ "Test"; "Picture" ] (Subtoken.split "TestPicture")

let test_split_snake () =
  check_sl "snake" [ "rotated"; "picture"; "name" ] (Subtoken.split "rotated_picture_name");
  check_sl "leading underscore" [ "fullpath" ] (Subtoken.split "_fullpath");
  check_sl "double underscore" [ "init" ] (Subtoken.split "__init__")

let test_split_mixed () =
  check_sl "acronym run" [ "HTTP"; "Server" ] (Subtoken.split "HTTPServer");
  check_sl "digits" [ "utf"; "8"; "decode" ] (Subtoken.split "utf8_decode");
  check_sl "screaming" [ "MAX"; "VALUE" ] (Subtoken.split "MAX_VALUE");
  check_sl "single" [ "x" ] (Subtoken.split "x");
  check_sl "empty" [] (Subtoken.split "")

let test_detect_style () =
  let open Subtoken in
  check_bool "snake" true (detect_style "foo_bar" = Snake);
  check_bool "camel" true (detect_style "fooBar" = Camel);
  check_bool "pascal" true (detect_style "FooBar" = Pascal);
  check_bool "screaming" true (detect_style "FOO_BAR" = Screaming);
  check_bool "flat" true (detect_style "foobar" = Flat)

let test_join () =
  let open Subtoken in
  check_str "snake" "foo_bar" (join Snake [ "foo"; "Bar" ]);
  check_str "camel" "fooBar" (join Camel [ "foo"; "bar" ]);
  check_str "pascal" "FooBar" (join Pascal [ "foo"; "bar" ]);
  check_str "screaming" "FOO_BAR" (join Screaming [ "foo"; "bar" ])

let test_replace_subtoken () =
  check_str "camel fix" "assertEqual"
    (Subtoken.replace_subtoken "assertTrue" ~index:1 ~with_:"Equal");
  check_str "snake fix" "picture_name"
    (Subtoken.replace_subtoken "picture_nmae" ~index:1 ~with_:"name");
  check_str "out of range" "foo" (Subtoken.replace_subtoken "foo" ~index:5 ~with_:"x")

let prop_split_round_trip =
  (* joining split subtokens in the detected style preserves the lowercase
     canonical form *)
  QCheck.Test.make ~name:"subtoken: canonical form stable under re-join" ~count:200
    (QCheck.string_gen_of_size (QCheck.Gen.return 8) (QCheck.Gen.oneofl [ 'a'; 'B'; 'c'; '_'; 'd' ]))
    (fun s ->
      QCheck.assume (Subtoken.split s <> []);
      let style = Subtoken.detect_style s in
      let joined = Subtoken.join style (Subtoken.split s) in
      Subtoken.split_lower joined = Subtoken.split_lower s)

(* ---------------- Edit distance ---------------- *)

let test_levenshtein () =
  check_int "identical" 0 (Edit_distance.levenshtein "port" "port");
  check_int "kitten" 3 (Edit_distance.levenshtein "kitten" "sitting");
  check_int "empty" 4 (Edit_distance.levenshtein "" "port");
  check_int "substitution" 1 (Edit_distance.levenshtein "cat" "cut")

let test_damerau () =
  check_int "transposition is one edit" 1 (Edit_distance.damerau "port" "prot");
  check_int "levenshtein would say two" 2 (Edit_distance.levenshtein "port" "prot");
  check_int "typo por" 1 (Edit_distance.damerau "por" "port")

let test_similarity () =
  checkf "equal" 1.0 (Edit_distance.similarity "abc" "abc");
  checkf "disjoint" 0.0 (Edit_distance.similarity "abc" "xyz")

let prop_edit_symmetry =
  QCheck.Test.make ~name:"edit distance: symmetric" ~count:200
    QCheck.(pair (string_of_size (QCheck.Gen.int_bound 10)) (string_of_size (QCheck.Gen.int_bound 10)))
    (fun (a, b) ->
      Edit_distance.levenshtein a b = Edit_distance.levenshtein b a
      && Edit_distance.damerau a b = Edit_distance.damerau b a)

let prop_damerau_le_lev =
  QCheck.Test.make ~name:"edit distance: damerau ≤ levenshtein" ~count:200
    QCheck.(pair (string_of_size (QCheck.Gen.int_bound 10)) (string_of_size (QCheck.Gen.int_bound 10)))
    (fun (a, b) -> Edit_distance.damerau a b <= Edit_distance.levenshtein a b)

(* ---------------- Prng ---------------- *)

let test_prng_determinism () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 50 do
    check_int "same stream" (Prng.int a 1000) (Prng.int b 1000)
  done

let test_prng_split_independent () =
  let a = Prng.create 7 in
  let s1 = Prng.split a in
  let v1 = Prng.int s1 1_000_000 in
  (* a second run: drawing extra values from the split must not change the
     parent's next split *)
  let b = Prng.create 7 in
  let s1' = Prng.split b in
  ignore (Prng.int s1' 10);
  ignore (Prng.int s1' 10);
  let a2 = Prng.split a and b2 = Prng.split b in
  check_int "parent unaffected by child draws" (Prng.int a2 1_000_000) (Prng.int b2 1_000_000);
  check_bool "child deterministic" true (v1 >= 0)

let prop_prng_int_range =
  QCheck.Test.make ~name:"prng: int in range" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, n) ->
      let p = Prng.create seed in
      let v = Prng.int p n in
      v >= 0 && v < n)

let prop_prng_shuffle_permutation =
  QCheck.Test.make ~name:"prng: shuffle is a permutation" ~count:100
    QCheck.(pair small_int (list_of_size (QCheck.Gen.int_range 0 30) int))
    (fun (seed, xs) ->
      let a = Array.of_list xs in
      Prng.shuffle (Prng.create seed) a;
      List.sort compare (Array.to_list a) = List.sort compare xs)

let test_prng_weighted () =
  let p = Prng.create 3 in
  for _ = 1 to 100 do
    let v = Prng.weighted p [ (0.0, "never"); (1.0, "always") ] in
    check_str "zero-weight branch never drawn" "always" v
  done

let test_prng_sample () =
  let p = Prng.create 5 in
  let s = Prng.sample p 3 [ 1; 2; 3; 4; 5 ] in
  check_int "sample size" 3 (List.length s);
  check_int "no duplicates" 3 (List.length (List.sort_uniq compare s));
  check_int "sample more than available" 2 (List.length (Prng.sample p 10 [ 1; 2 ]))

let test_prng_gaussian () =
  let p = Prng.create 11 in
  let xs = List.init 2000 (fun _ -> Prng.gaussian p) in
  let m = Stats.mean xs and s = Stats.stddev xs in
  check_bool "mean near 0" true (abs_float m < 0.1);
  check_bool "stddev near 1" true (abs_float (s -. 1.0) < 0.1)

(* ---------------- Counter / Stats / Interner / Tablefmt ---------------- *)

let test_counter () =
  let c = Counter.of_list [ "a"; "b"; "a"; "a" ] in
  check_int "count a" 3 (Counter.count c "a");
  check_int "count missing" 0 (Counter.count c "z");
  check_int "total" 4 (Counter.total c);
  check_int "distinct" 2 (Counter.distinct c);
  (match Counter.top 1 c with
  | [ ("a", 3) ] -> ()
  | _ -> Alcotest.fail "top-1 should be a×3");
  let kept = Counter.filter_min c ~min_count:2 in
  check_int "filter_min keeps a only" 1 (List.length kept)

let test_stats_confusion () =
  let c =
    Stats.confusion
      ~predicted:[ true; true; false; false; true ]
      ~actual:[ true; false; false; true; true ]
  in
  checkf "accuracy" 0.6 (Stats.accuracy c);
  checkf "precision" (2.0 /. 3.0) (Stats.precision c);
  checkf "recall" (2.0 /. 3.0) (Stats.recall c);
  checkf "f1" (2.0 /. 3.0) (Stats.f1 c)

let test_stats_percentile () =
  let xs = [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  checkf "median" 3.0 (Stats.percentile 50.0 xs);
  checkf "min" 1.0 (Stats.percentile 0.0 xs);
  checkf "max" 5.0 (Stats.percentile 100.0 xs);
  (* out-of-range p is clamped instead of indexing out of bounds *)
  checkf "p above 100 clamps" 5.0 (Stats.percentile 250.0 xs);
  checkf "negative p clamps" 1.0 (Stats.percentile (-3.0) xs)

let test_stats_guards () =
  Alcotest.check_raises "percentile of empty"
    (Invalid_argument "Stats.percentile: empty sample") (fun () ->
      ignore (Stats.percentile 50.0 []));
  let singleton_msg = "Stats.variance: need at least 2 samples (got 0 or 1)" in
  Alcotest.check_raises "variance of empty" (Invalid_argument singleton_msg)
    (fun () -> ignore (Stats.variance []));
  Alcotest.check_raises "variance of singleton" (Invalid_argument singleton_msg)
    (fun () -> ignore (Stats.variance [ 4.2 ]))

let test_interner () =
  let i = Interner.create () in
  let a = Interner.intern i "foo" and b = Interner.intern i "bar" in
  check_int "same string same id" a (Interner.intern i "foo");
  check_bool "distinct ids" true (a <> b);
  check_str "name round trip" "bar" (Interner.name i b);
  check_int "size" 2 (Interner.size i);
  check_bool "lookup known" true (Interner.lookup i "foo" = Some a);
  check_bool "lookup unknown" true (Interner.lookup i "baz" = None);
  Alcotest.check_raises "unknown id" (Invalid_argument "Interner.name: unknown id")
    (fun () -> ignore (Interner.name i 99))

let test_interner_growth () =
  let i = Interner.create () in
  for k = 0 to 999 do
    ignore (Interner.intern i (string_of_int k))
  done;
  check_int "dense ids" 1000 (Interner.size i);
  check_str "survives array growth" "512" (Interner.name i 512)

let test_interner_freeze () =
  let i = Interner.create () in
  let a = Interner.intern i "foo" in
  Interner.freeze i;
  check_bool "frozen" true (Interner.is_frozen i);
  check_int "known strings still intern" a (Interner.intern i "foo");
  check_bool "lookup works frozen" true (Interner.lookup i "foo" = Some a);
  Alcotest.check_raises "unknown string raises"
    (Invalid_argument "Interner.intern: frozen") (fun () ->
      ignore (Interner.intern i "baz"));
  Interner.freeze i;
  check_bool "freeze idempotent" true (Interner.is_frozen i);
  Interner.thaw i;
  check_bool "thawed" false (Interner.is_frozen i);
  let b = Interner.intern i "baz" in
  check_int "ids survive the cycle" a (Interner.intern i "foo");
  check_int "allocation resumes densely" (a + 1) b

let test_interner_remap () =
  let global = Interner.create () in
  ignore (Interner.intern global "x");
  ignore (Interner.intern global "y");
  let local = Interner.create () in
  ignore (Interner.intern local "y");
  ignore (Interner.intern local "z");
  let m = Interner.remap ~into:global local in
  check_int "translation length" (Interner.size local) (Array.length m);
  Array.iteri
    (fun id gid ->
      check_str "remap preserves names" (Interner.name local id) (Interner.name global gid))
    m;
  check_int "shared string keeps its global id" 1 m.(0);
  check_int "new string appended" 2 m.(1);
  check_int "global grew by the new strings only" 3 (Interner.size global)

let prop_interner_bijection =
  QCheck.Test.make ~name:"interner: first-seen-order bijection" ~count:200
    QCheck.(list (string_gen_of_size (Gen.int_range 0 6) Gen.printable))
    (fun strings ->
      let i = Interner.create () in
      let ids = List.map (Interner.intern i) strings in
      (* same string ⟺ same id *)
      List.for_all2
        (fun s id ->
          Interner.name i id = s
          && List.for_all2
               (fun s' id' -> s = s' = (id = id'))
               strings ids)
        strings ids
      (* ids are dense and in first-seen order *)
      && Interner.size i = List.length (List.sort_uniq compare strings)
      &&
      let seen = ref [] in
      List.for_all
        (fun id ->
          if List.mem id !seen then true
          else begin
            let expected = List.length !seen in
            seen := !seen @ [ id ];
            id = expected
          end)
        ids)

let test_tablefmt () =
  let s =
    Tablefmt.render ~caption:"Cap" ~header:[ "a"; "b" ]
      [ [ "x"; "1" ]; [ "yy"; "22" ] ]
  in
  check_bool "contains caption" true
    (String.length s > 3 && String.sub s 0 3 = "Cap");
  check_str "pct" "70%" (Tablefmt.pct 0.70);
  check_str "pct digits" "66.7%" (Tablefmt.pct ~digits:1 (2.0 /. 3.0))

let suite =
  [
    Alcotest.test_case "subtoken: camelCase" `Quick test_split_camel;
    Alcotest.test_case "subtoken: snake_case" `Quick test_split_snake;
    Alcotest.test_case "subtoken: mixed conventions" `Quick test_split_mixed;
    Alcotest.test_case "subtoken: style detection" `Quick test_detect_style;
    Alcotest.test_case "subtoken: join" `Quick test_join;
    Alcotest.test_case "subtoken: replace subtoken" `Quick test_replace_subtoken;
    QCheck_alcotest.to_alcotest prop_split_round_trip;
    Alcotest.test_case "edit: levenshtein" `Quick test_levenshtein;
    Alcotest.test_case "edit: damerau transposition" `Quick test_damerau;
    Alcotest.test_case "edit: similarity" `Quick test_similarity;
    QCheck_alcotest.to_alcotest prop_edit_symmetry;
    QCheck_alcotest.to_alcotest prop_damerau_le_lev;
    Alcotest.test_case "prng: determinism" `Quick test_prng_determinism;
    Alcotest.test_case "prng: split independence" `Quick test_prng_split_independent;
    QCheck_alcotest.to_alcotest prop_prng_int_range;
    QCheck_alcotest.to_alcotest prop_prng_shuffle_permutation;
    Alcotest.test_case "prng: weighted" `Quick test_prng_weighted;
    Alcotest.test_case "prng: sample" `Quick test_prng_sample;
    Alcotest.test_case "prng: gaussian moments" `Quick test_prng_gaussian;
    Alcotest.test_case "counter: counts and top" `Quick test_counter;
    Alcotest.test_case "stats: confusion metrics" `Quick test_stats_confusion;
    Alcotest.test_case "stats: percentile" `Quick test_stats_percentile;
    Alcotest.test_case "stats: empty/singleton guards" `Quick test_stats_guards;
    Alcotest.test_case "interner: basics" `Quick test_interner;
    Alcotest.test_case "interner: growth" `Quick test_interner_growth;
    Alcotest.test_case "interner: freeze/thaw" `Quick test_interner_freeze;
    Alcotest.test_case "interner: remap merge" `Quick test_interner_remap;
    QCheck_alcotest.to_alcotest prop_interner_bijection;
    Alcotest.test_case "tablefmt: render" `Quick test_tablefmt;
  ]

(* ---------------- Json ---------------- *)

let test_json_scalars () =
  let open Json in
  check_str "null" "null" (to_string Null);
  check_str "bool" "true" (to_string (Bool true));
  check_str "int" "42" (to_string (Int 42));
  check_str "float" "1.5" (to_string (Float 1.5));
  check_str "string escape" "\"a\\\"b\\nc\"" (to_string (String "a\"b\nc"))

let test_json_compound () =
  let open Json in
  check_str "list" "[1,2]" (to_string (List [ Int 1; Int 2 ]));
  check_str "object" "{\"k\":\"v\"}" (to_string (Obj [ ("k", String "v") ]));
  check_str "empty" "{}" (to_string (Obj []));
  check_str "nested"
    "{\"xs\":[{\"a\":1}]}"
    (to_string (Obj [ ("xs", List [ Obj [ ("a", Int 1) ] ]) ]))

let test_json_indent () =
  let open Json in
  check_str "pretty" "{\n  \"a\": 1\n}" (to_string ~indent:2 (Obj [ ("a", Int 1) ]))

let test_json_parse () =
  let open Json in
  let ok s = match parse s with Ok v -> v | Error e -> Alcotest.fail e in
  check_bool "null" true (ok "null" = Null);
  check_bool "bools" true (ok " true " = Bool true && ok "false" = Bool false);
  check_bool "int" true (ok "42" = Int 42);
  check_bool "negative int" true (ok "-7" = Int (-7));
  check_bool "float" true (ok "1.5" = Float 1.5);
  check_bool "exponent" true (ok "2e3" = Float 2000.0);
  check_bool "string escapes" true (ok "\"a\\\"b\\nc\"" = String "a\"b\nc");
  check_bool "unicode escape" true (ok "\"\\u0041\"" = String "A");
  check_bool "empty containers" true (ok "[]" = List [] && ok "{}" = Obj []);
  check_bool "nested" true
    (ok "{\"xs\": [{\"a\": 1}, 2]}"
    = Obj [ ("xs", List [ Obj [ ("a", Int 1) ]; Int 2 ]) ]);
  List.iter
    (fun bad ->
      match parse bad with
      | Ok _ -> Alcotest.fail (Printf.sprintf "parse %S should fail" bad)
      | Error _ -> ())
    [ ""; "{"; "[1,"; "\"unterminated"; "{\"a\" 1}"; "nul"; "1 2" ]

let test_json_parse_roundtrip () =
  let open Json in
  let v =
    Obj
      [
        ("counters", Obj [ ("files", Int 183); ("ratio", Float 0.25) ]);
        ("names", List [ String "parse"; String "scan" ]);
        ("ok", Bool true);
        ("nothing", Null);
      ]
  in
  (* compact and pretty renderings both parse back to the same value *)
  (match parse (to_string v) with
  | Ok v' -> check_bool "compact round trip" true (v = v')
  | Error e -> Alcotest.fail e);
  match parse (to_string ~indent:2 v) with
  | Ok v' -> check_bool "pretty round trip" true (v = v')
  | Error e -> Alcotest.fail e

let json_suite =
  [
    Alcotest.test_case "json: scalars" `Quick test_json_scalars;
    Alcotest.test_case "json: compound" `Quick test_json_compound;
    Alcotest.test_case "json: indentation" `Quick test_json_indent;
    Alcotest.test_case "json: parse" `Quick test_json_parse;
    Alcotest.test_case "json: parse round trip" `Quick test_json_parse_roundtrip;
  ]

let suite = suite @ json_suite
