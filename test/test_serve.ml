(* The serve daemon: protocol round-trips, concurrent requests answering
   byte-identically, model hot-swap atomicity under traffic, timeout and
   backpressure paths, fault-injection degradation, and graceful drain —
   all against real daemons on ephemeral TCP ports, one per test. *)

module Namer = Namer_core.Namer
module Corpus = Namer_corpus.Corpus
module Miner = Namer_mining.Miner
module Serve = Namer_serve.Serve
module Client = Namer_serve.Client
module Fault = Namer_util.Fault
module J = Namer_util.Json

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let temp_dir prefix =
  let d = Filename.temp_file prefix "" in
  Sys.remove d;
  Sys.mkdir d 0o700;
  d

let rec mkdir_p d =
  if not (Sys.file_exists d) then begin
    mkdir_p (Filename.dirname d);
    try Sys.mkdir d 0o755 with Sys_error _ -> ()
  end

let namer_cfg =
  {
    Namer.default_config with
    use_classifier = false;
    miner = { Miner.default_config with Miner.min_support = 5; min_path_freq = 3 };
  }

let build_model ~seed ~path =
  let corpus =
    Corpus.generate
      {
        (Corpus.default_config Corpus.Python) with
        Corpus.n_repos = 6;
        files_per_repo = (3, 4);
        seed;
      }
  in
  let t = Namer.build namer_cfg corpus in
  (corpus, Namer.save_model t ~path)

(* One corpus on disk and two distinct model snapshots, built once. *)
let env =
  lazy
    (let dir = temp_dir "test_serve_corpus" in
     let model_a = Filename.temp_file "test_serve_a" ".nmdl" in
     let model_b = Filename.temp_file "test_serve_b" ".nmdl" in
     let corpus, m_a = build_model ~seed:11 ~path:model_a in
     let _, m_b = build_model ~seed:23 ~path:model_b in
     List.iter
       (fun (f : Corpus.file) ->
         let path = Filename.concat dir f.Corpus.path in
         mkdir_p (Filename.dirname path);
         let oc = open_out_bin path in
         output_string oc f.Corpus.source;
         close_out oc)
       corpus.Corpus.files;
     (dir, model_a, m_a.Namer.m_hash, model_b, m_b.Namer.m_hash))

let with_daemon ?(jobs = 1) ?cache_dir ?(max_concurrent = 64) ?(timeout_ms = 30_000)
    ~model f =
  let sv =
    Serve.create
      {
        (Serve.default_config ~model_path:model (Serve.Tcp ("127.0.0.1", 0))) with
        Serve.sv_jobs = jobs;
        sv_cache_dir = cache_dir;
        sv_max_concurrent = max_concurrent;
        sv_timeout_ms = timeout_ms;
      }
  in
  let stats = ref None in
  let th = Thread.create (fun () -> stats := Some (Serve.serve_forever sv)) () in
  let target =
    match Serve.endpoint sv with
    | Serve.Tcp (h, p) -> Client.Tcp (h, p)
    | Serve.Unix_path p -> Client.Unix_path p
  in
  let result =
    Fun.protect
      ~finally:(fun () ->
        Serve.request_stop sv;
        Thread.join th)
      (fun () -> f sv target)
  in
  (result, !stats)

let req conn obj =
  match Client.request conn obj with
  | Ok j -> j
  | Error e -> Alcotest.failf "request failed: %s" e

let field name = function J.Obj fs -> List.assoc_opt name fs | _ -> None
let str name j = match field name j with Some (J.String s) -> s | _ -> ""
let int_f name j = match field name j with Some (J.Int i) -> i | _ -> -1
let is_ok j = field "ok" j = Some (J.Bool true)

let scan_payload dir = J.Obj [ ("op", J.String "scan"); ("dir", J.String dir) ]

(* -------- protocol round trips -------- *)

let test_status () =
  let dir, model_a, hash_a, _, _ = Lazy.force env in
  ignore dir;
  ignore
    (with_daemon ~model:model_a (fun sv target ->
         check_string "create sees the model hash" hash_a (Serve.model_hash sv);
         let c = Client.connect ~retry_for:5.0 target in
         let s = req c (J.Obj [ ("op", J.String "status") ]) in
         Client.close c;
         check_bool "status ok" true (is_ok s);
         check_string "status names the model" hash_a (str "model" s);
         check_string "status names the language" "Python" (str "lang" s);
         check_bool "status counts patterns" true (int_f "patterns" s > 0);
         check_int "no scans yet" 0 (int_f "scans" s)))

let test_malformed_request () =
  let _, model_a, _, _, _ = Lazy.force env in
  ignore
    (with_daemon ~model:model_a (fun _ target ->
         let c = Client.connect ~retry_for:5.0 target in
         (match Client.request_raw c "{this is not json" with
         | Ok line -> (
             match J.parse line with
             | Ok j ->
                 check_bool "malformed -> ok:false" false (is_ok j);
                 check_string "malformed -> bad_request" "bad_request" (str "code" j)
             | Error e -> Alcotest.failf "error response not JSON: %s" e)
         | Error e -> Alcotest.failf "no response to malformed request: %s" e);
         (* the connection survives a bad request *)
         let s = req c (J.Obj [ ("op", J.String "status") ]) in
         Client.close c;
         check_bool "connection still usable" true (is_ok s)))

let test_unknown_op () =
  let _, model_a, _, _, _ = Lazy.force env in
  ignore
    (with_daemon ~model:model_a (fun _ target ->
         let c = Client.connect ~retry_for:5.0 target in
         let r = req c (J.Obj [ ("op", J.String "frobnicate") ]) in
         Client.close c;
         check_bool "unknown op refused" false (is_ok r);
         check_string "unknown op -> bad_request" "bad_request" (str "code" r)))

(* -------- scan correctness -------- *)

let test_scan_matches_direct () =
  let dir, model_a, hash_a, _, _ = Lazy.force env in
  ignore
    (with_daemon ~model:model_a (fun _ target ->
         let c = Client.connect ~retry_for:5.0 target in
         let r = req c (scan_payload dir) in
         Client.close c;
         check_bool "scan ok" true (is_ok r);
         check_string "scan names its model" hash_a (str "model" r);
         let m = Namer.load_model ~path:model_a in
         let read p =
           let ic = open_in_bin p in
           let s = really_input_string ic (in_channel_length ic) in
           close_in ic;
           s
         in
         let rec walk d =
           Sys.readdir d |> Array.to_list |> List.sort compare
           |> List.concat_map (fun e ->
                  let p = Filename.concat d e in
                  if Sys.is_directory p then walk p else [ p ])
         in
         let files =
           walk dir
           |> List.filter (fun p -> Filename.check_suffix p ".py")
           |> List.map (fun path -> { Corpus.repo = dir; path; source = read path })
         in
         let direct = Namer.scan_with_model ~jobs:1 m files in
         check_int "same file count" (List.length files) (int_f "files" r);
         check_int "same violation count"
           (Array.length direct.Namer.sr_reports)
           (int_f "violations" r);
         check_bool "some violations to compare" true (int_f "violations" r > 0);
         let served =
           match field "reports" r with
           | Some (J.List rs) ->
               List.map
                 (fun rep ->
                   Printf.sprintf "%s:%d:%s:%s:%s" (str "file" rep) (int_f "line" rep)
                     (str "found" rep) (str "suggested" rep) (str "pattern" rep))
                 rs
           | _ -> []
         in
         let expected =
           Array.to_list direct.Namer.sr_reports
           |> List.map (fun (x : Namer.report) ->
                  Printf.sprintf "%s:%d:%s:%s:%s" x.Namer.r_file x.Namer.r_line
                    x.Namer.r_found x.Namer.r_suggested x.Namer.r_kind)
         in
         check_string "reports identical to a direct scan_with_model"
           (String.concat "\n" expected) (String.concat "\n" served)))

let test_concurrent_requests_identical () =
  let dir, model_a, _, _, _ = Lazy.force env in
  ignore
    (with_daemon ~model:model_a
       ~cache_dir:(temp_dir "test_serve_cache")
       (fun _ target ->
         let spec =
           {
             (Client.Load.default_spec ~payload:(scan_payload dir)) with
             Client.Load.l_clients = 4;
             l_requests = 16;
           }
         in
         let r = Client.Load.run target spec in
         check_int "all requests answered" 16 r.Client.Load.lr_sent;
         check_int "all requests ok" 16 r.Client.Load.lr_ok;
         check_int "no failures" 0 r.Client.Load.lr_failed;
         check_bool "concurrent responses byte-identical" true
           r.Client.Load.lr_responses_identical))

let test_pooled_daemon_matches_sequential () =
  let dir, model_a, _, _, _ = Lazy.force env in
  (* jobs=2 forces a resident pool even on a 1-core machine; its scans
     must be byte-identical to the jobs=1 daemon's *)
  let (seq_fp, _), _ =
    with_daemon ~jobs:1 ~model:model_a (fun _ target ->
        let c = Client.connect ~retry_for:5.0 target in
        let r = req c (scan_payload dir) in
        Client.close c;
        (Client.scan_fingerprint r, is_ok r))
  in
  ignore
    (with_daemon ~jobs:2 ~model:model_a (fun _ target ->
         let spec =
           {
             (Client.Load.default_spec ~payload:(scan_payload dir)) with
             Client.Load.l_clients = 3;
             l_requests = 9;
           }
         in
         let r = Client.Load.run target spec in
         check_int "pooled daemon: all ok" 9 r.Client.Load.lr_ok;
         check_bool "pooled responses identical" true
           r.Client.Load.lr_responses_identical;
         let c = Client.connect ~retry_for:5.0 target in
         let one = req c (scan_payload dir) in
         Client.close c;
         check_string "pooled scan == sequential scan" seq_fp
           (Client.scan_fingerprint one)))

let test_cache_shared_across_requests () =
  let dir, model_a, _, _, _ = Lazy.force env in
  ignore
    (with_daemon ~model:model_a
       ~cache_dir:(temp_dir "test_serve_cache2")
       (fun _ target ->
         let c = Client.connect ~retry_for:5.0 target in
         let cold = req c (scan_payload dir) in
         let warm = req c (scan_payload dir) in
         Client.close c;
         check_int "cold scan misses everything" (int_f "files" cold)
           (int_f "cache_misses" cold);
         check_int "warm scan hits everything" (int_f "files" warm)
           (int_f "cache_hits" warm);
         check_int "warm scan misses nothing" 0 (int_f "cache_misses" warm);
         check_string "cold and warm reports identical"
           (Client.scan_fingerprint cold) (Client.scan_fingerprint warm)))

(* -------- hot swap -------- *)

let test_hot_swap_under_traffic () =
  let dir, model_a, hash_a, model_b, hash_b = Lazy.force env in
  ignore
    (with_daemon ~model:model_a (fun sv target ->
         let spec =
           {
             (Client.Load.default_spec ~payload:(scan_payload dir)) with
             Client.Load.l_clients = 4;
             l_requests = 20;
             l_reload_at = Some 5;
             l_reload_payload =
               J.Obj [ ("op", J.String "reload"); ("model", J.String model_b) ];
           }
         in
         let r = Client.Load.run target spec in
         check_int "no failures across the swap" 0 r.Client.Load.lr_failed;
         check_bool "reload succeeded" true r.Client.Load.lr_reload_ok;
         (* atomicity: every response names exactly one model, and only
            the old or the new one ever appears *)
         List.iter
           (fun h ->
             check_bool
               (Printf.sprintf "response model %s is old or new" h)
               true
               (h = hash_a || h = hash_b))
           r.Client.Load.lr_models_seen;
         check_bool "the new model served requests" true
           (List.mem hash_b r.Client.Load.lr_models_seen);
         check_string "daemon settled on the new model" hash_b (Serve.model_hash sv)))

let test_reload_bad_snapshot_keeps_old () =
  let _, model_a, hash_a, _, _ = Lazy.force env in
  ignore
    (with_daemon ~model:model_a (fun sv target ->
         let junk = Filename.temp_file "test_serve_junk" ".nmdl" in
         let oc = open_out junk in
         output_string oc "not a snapshot";
         close_out oc;
         let c = Client.connect ~retry_for:5.0 target in
         let r =
           req c (J.Obj [ ("op", J.String "reload"); ("model", J.String junk) ])
         in
         Client.close c;
         Sys.remove junk;
         check_bool "bad snapshot refused" false (is_ok r);
         check_string "old model keeps serving" hash_a (Serve.model_hash sv)))

(* -------- timeout and backpressure -------- *)

let test_partial_request_times_out () =
  let _, model_a, _, _, _ = Lazy.force env in
  ignore
    (with_daemon ~timeout_ms:300 ~model:model_a (fun _ target ->
         let host, port =
           match target with
           | Client.Tcp (h, p) -> (h, p)
           | Client.Unix_path _ -> Alcotest.fail "expected tcp target"
         in
         let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
         Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
         (* half a request, then silence *)
         ignore (Unix.write_substring fd "{\"op\":\"sta" 0 10);
         let buf = Bytes.create 4096 in
         let n = Unix.read fd buf 0 4096 in
         let line = Bytes.sub_string buf 0 n in
         (match J.parse (String.trim line) with
         | Ok j ->
             check_bool "timeout -> ok:false" false (is_ok j);
             check_string "timeout code" "timeout" (str "code" j)
         | Error e -> Alcotest.failf "timeout response not JSON (%S): %s" line e);
         (* the daemon hangs up after answering *)
         check_int "connection closed after timeout" 0 (Unix.read fd buf 0 4096);
         Unix.close fd))

let test_backpressure_overloaded () =
  let dir, model_a, _, _, _ = Lazy.force env in
  ignore
    (with_daemon ~max_concurrent:1 ~model:model_a (fun _ target ->
         Fault.reset ();
         (* first admitted scan sleeps 500 ms inside its admission slot *)
         Fault.arm ~times:1 "serve.slow";
         let slow_result = ref None in
         let slow =
           Thread.create
             (fun () ->
               let c = Client.connect ~retry_for:5.0 target in
               slow_result := Some (req c (scan_payload dir));
               Client.close c)
             ()
         in
         Thread.delay 0.15;
         let c = Client.connect ~retry_for:5.0 target in
         let refused = req c (scan_payload dir) in
         check_bool "second scan refused" false (is_ok refused);
         check_string "refused with overloaded" "overloaded" (str "code" refused);
         Thread.join slow;
         (match !slow_result with
         | Some r -> check_bool "slow scan still completed" true (is_ok r)
         | None -> Alcotest.fail "slow scan never answered");
         (* capacity freed: the next scan is admitted again *)
         let ok_again = req c (scan_payload dir) in
         Client.close c;
         Fault.reset ();
         check_bool "scan admitted after the slot freed" true (is_ok ok_again)))

(* -------- fault isolation and drain -------- *)

let test_request_fault_degrades () =
  let _, model_a, _, _, _ = Lazy.force env in
  ignore
    (with_daemon ~model:model_a (fun _ target ->
         Fault.reset ();
         Fault.arm ~times:1 "serve.request";
         let c = Client.connect ~retry_for:5.0 target in
         let r = req c (J.Obj [ ("op", J.String "status") ]) in
         check_bool "injected fault -> ok:false" false (is_ok r);
         check_string "injected fault -> degraded" "degraded" (str "code" r);
         (* the daemon and the connection survive the poisoned request *)
         let s = req c (J.Obj [ ("op", J.String "status") ]) in
         Client.close c;
         Fault.reset ();
         check_bool "daemon stays up" true (is_ok s);
         check_int "degraded counted" 1 (int_f "degraded" s)))

let test_shutdown_drains () =
  let dir, model_a, _, _, _ = Lazy.force env in
  let (), stats =
    with_daemon ~model:model_a (fun _ target ->
        let c = Client.connect ~retry_for:5.0 target in
        let scan = req c (scan_payload dir) in
        check_bool "scan before shutdown" true (is_ok scan);
        let r = req c (J.Obj [ ("op", J.String "shutdown") ]) in
        check_bool "shutdown acknowledged" true (is_ok r);
        check_bool "shutdown says draining" true
          (field "draining" r = Some (J.Bool true));
        Client.close c)
  in
  match stats with
  | None -> Alcotest.fail "serve_forever did not return after shutdown"
  | Some (s : Serve.stats) ->
      check_int "both requests in the lifetime stats" 2 s.Serve.st_requests;
      check_int "one scan in the lifetime stats" 1 s.Serve.st_scans;
      check_bool "latency percentiles recorded" true (s.Serve.st_p99_ms > 0.0)

let suite =
  [
    ("serve: status round trip", `Quick, test_status);
    ("serve: malformed request -> structured error", `Quick, test_malformed_request);
    ("serve: unknown op -> bad_request", `Quick, test_unknown_op);
    ("serve: scan == direct scan_with_model", `Quick, test_scan_matches_direct);
    ( "serve: concurrent requests byte-identical",
      `Quick,
      test_concurrent_requests_identical );
    ( "serve: pooled daemon == sequential daemon",
      `Quick,
      test_pooled_daemon_matches_sequential );
    ("serve: cache shared across requests", `Quick, test_cache_shared_across_requests);
    ("serve: hot swap under traffic", `Quick, test_hot_swap_under_traffic);
    ("serve: bad reload keeps old model", `Quick, test_reload_bad_snapshot_keeps_old);
    ("serve: partial request times out", `Quick, test_partial_request_times_out);
    ("serve: backpressure -> overloaded", `Quick, test_backpressure_overloaded);
    ("serve: injected fault -> degraded", `Quick, test_request_fault_degrades);
    ("serve: shutdown drains and reports stats", `Quick, test_shutdown_drains);
  ]
