(* Tests for feature extraction (Table 1) and the scan aggregates. *)

module Features = Namer_classifier.Features
module Pattern = Namer_pattern.Pattern
module Namepath = Namer_namepath.Namepath
module Confusing_pairs = Namer_mining.Confusing_pairs

let check_int = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-9))

let np = Namepath.of_string

let stmt_a : Features.stmt_ctx =
  { file = "r1/a.py"; repo = "r1"; file_id = 0; repo_id = 0; tree_hash = 111; n_paths = 5 }

let stmt_b : Features.stmt_ctx =
  { file = "r1/b.py"; repo = "r1"; file_id = 1; repo_id = 0; tree_hash = 111; n_paths = 7 }

let stmt_c : Features.stmt_ctx =
  { file = "r2/c.py"; repo = "r2"; file_id = 2; repo_id = 1; tree_hash = 222; n_paths = 4 }

let pattern =
  let p =
    Pattern.make
      ~kind:(Pattern.Confusing_word { correct = "Equal" })
      ~condition:[ np "A 0 B 0 self"; np "A 1 C 0 NUM" ]
      ~deduction:[ Namepath.to_symbolic (np "A 2 D 0 Equal") ]
  in
  let store = Pattern.Store.create () in
  let id = Pattern.Store.add store p in
  Pattern.Store.get store id

let build_agg () =
  let agg = Features.Agg.create () in
  (* identical-statement counts: two statements with hash 111 in repo r1 *)
  Features.Agg.add_stmt agg stmt_a;
  Features.Agg.add_stmt agg stmt_b;
  Features.Agg.add_stmt agg stmt_c;
  (* pattern outcomes: in file a — 3 satisfied, 1 violated; in file c — 1
     satisfied *)
  let v = Pattern.Violated { offending_prefix = "A 2 D"; found = "True"; suggested = "Equal" } in
  Features.Agg.add_outcome agg stmt_a ~pattern_id:pattern.Pattern.id Pattern.Satisfied;
  Features.Agg.add_outcome agg stmt_a ~pattern_id:pattern.Pattern.id Pattern.Satisfied;
  Features.Agg.add_outcome agg stmt_a ~pattern_id:pattern.Pattern.id Pattern.Satisfied;
  Features.Agg.add_outcome agg stmt_a ~pattern_id:pattern.Pattern.id v;
  Features.Agg.add_outcome agg stmt_c ~pattern_id:pattern.Pattern.id Pattern.Satisfied;
  agg

let info = { Pattern.offending_prefix = "A 2 D"; found = "True"; suggested = "Equal" }

let test_feature_vector () =
  let agg = build_agg () in
  let pairs = Confusing_pairs.create () in
  Confusing_pairs.add_pair pairs ("True", "Equal");
  let f = Features.extract agg pairs stmt_a pattern info in
  check_int "17 features" 17 (Array.length f);
  checkf "f1: n paths" 5.0 f.(0);
  checkf "f2: identical in file" 1.0 f.(1);
  checkf "f3: identical in repo (a and b share hash)" 2.0 f.(2);
  checkf "f4: satisfaction rate file (3/4)" 0.75 f.(3);
  checkf "f5: satisfaction rate repo" 0.75 f.(4);
  checkf "f6: satisfaction rate dataset (4/5)" 0.8 f.(5);
  checkf "f7: violations file" 1.0 f.(6);
  checkf "f8: violations repo" 1.0 f.(7);
  checkf "f9: violations dataset" 1.0 f.(8);
  checkf "f10: satisfactions file" 3.0 f.(9);
  checkf "f11: satisfactions repo" 3.0 f.(10);
  checkf "f12: satisfactions dataset" 4.0 f.(11);
  checkf "f13: not a function name (no Call in prefix)" 0.0 f.(12);
  checkf "f14: condition size" 2.0 f.(13);
  checkf "f15: match ratio 2/(5-1)" 0.5 f.(14);
  checkf "f16: edit distance True/Equal" 4.0 f.(15);
  checkf "f17: confusing pair" 1.0 f.(16)

let test_feature_no_pair () =
  let agg = build_agg () in
  let pairs = Confusing_pairs.create () in
  let f = Features.extract agg pairs stmt_a pattern info in
  checkf "f17 without the mined pair" 0.0 f.(16)

let test_unseen_pattern_zero_counts () =
  let agg = Features.Agg.create () in
  let pairs = Confusing_pairs.create () in
  let f = Features.extract agg pairs stmt_c pattern info in
  checkf "f4 defaults" 0.0 f.(3);
  checkf "f9 defaults" 0.0 f.(8);
  checkf "f2 defaults to 1 (itself)" 1.0 f.(1)

let test_names_cover_features () =
  check_int "17 names" Features.n_features (Array.length Features.names)

let suite =
  [
    Alcotest.test_case "table 1 feature vector" `Quick test_feature_vector;
    Alcotest.test_case "feature 17 requires a mined pair" `Quick test_feature_no_pair;
    Alcotest.test_case "defaults for unseen patterns" `Quick test_unseen_pattern_zero_counts;
    Alcotest.test_case "feature names" `Quick test_names_cover_features;
  ]
