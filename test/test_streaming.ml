(* Streaming-frontend contract (DESIGN.md §12): batching and worker count
   are invisible — build and scan results are byte-identical for every
   [digest_batch] and [jobs] — disk-backed refs digest identically to
   in-memory files, sources never outlive their digest (the in-flight
   gauge), and a ref whose load fails degrades into a per-file skip
   instead of poisoning the run. *)

module Corpus = Namer_corpus.Corpus
module Namer = Namer_core.Namer
module Pattern = Namer_pattern.Pattern

let fingerprint (t : Namer.t) =
  Array.to_list t.Namer.violations
  |> List.map (fun (v : Namer.violation) ->
         Printf.sprintf "%s:%d:%s:%s"
           v.Namer.v_stmt.Namer.sctx.Namer_classifier.Features.file
           v.Namer.v_stmt.Namer.line v.Namer.v_info.Pattern.found
           v.Namer.v_info.Pattern.suggested)
  |> String.concat "\n"

let small_corpus () =
  Corpus.generate
    { (Corpus.default_config Corpus.Python) with Corpus.n_repos = 8; seed = 11 }

(* the CLI's self-mining shape: no oracle, no classifier *)
let base_cfg =
  { Namer.default_config with Namer.use_classifier = false }

let build_refs_with ~digest_batch ~jobs ?(cap_domains = true) refs =
  Namer.build_refs
    { base_cfg with Namer.digest_batch; jobs; cap_domains }
    ~lang:Corpus.Python refs

(* batching and parallelism must both be invisible: tiny odd batches, the
   default batch, and a multi-domain build all reproduce one result *)
let batch_and_jobs_invariant () =
  let corpus = small_corpus () in
  let refs = List.map Namer.ref_of_file corpus.Corpus.files in
  let t1 = build_refs_with ~digest_batch:1024 ~jobs:1 refs in
  let t2 = build_refs_with ~digest_batch:7 ~jobs:1 refs in
  let t3 = build_refs_with ~digest_batch:13 ~jobs:4 ~cap_domains:false refs in
  Alcotest.(check bool) "violations found" true (Array.length t1.Namer.violations > 0);
  Alcotest.(check int) "n_stmts batch=7" t1.Namer.n_stmts t2.Namer.n_stmts;
  Alcotest.(check string) "batch=7 identical" (fingerprint t1) (fingerprint t2);
  Alcotest.(check string) "batch=13 jobs=4 identical" (fingerprint t1) (fingerprint t3)

let rec mkdir_p d =
  if not (Sys.file_exists d) then begin
    mkdir_p (Filename.dirname d);
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let with_tmpdir f =
  let tmp = Filename.temp_file "namer_streaming" "" in
  Sys.remove tmp;
  Unix.mkdir tmp 0o700;
  Fun.protect
    ~finally:(fun () ->
      ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote tmp))))
    (fun () -> f tmp)

let render (r : Namer.report) =
  Printf.sprintf "%s:%d:%s:%s:%s:%s" r.Namer.r_file r.Namer.r_line r.Namer.r_prefix
    r.Namer.r_found r.Namer.r_suggested r.Namer.r_kind

let reports_str (sr : Namer.scan_result) =
  Array.to_list sr.Namer.sr_reports |> List.map render |> String.concat "\n"

(* a scan over disk-backed refs is byte-identical to the in-memory scan of
   the same sources *)
let disk_refs_equal_memory () =
  let corpus = small_corpus () in
  let t = Namer.build base_cfg corpus in
  let m = Namer.model_of t in
  with_tmpdir @@ fun tmp ->
  let refs =
    List.map
      (fun (f : Corpus.file) ->
        let full = Filename.concat tmp f.Corpus.path in
        mkdir_p (Filename.dirname full);
        let oc = open_out_bin full in
        output_string oc f.Corpus.source;
        close_out oc;
        Namer.ref_of_path ~repo:f.Corpus.repo ~path:f.Corpus.path ~file:full)
      corpus.Corpus.files
  in
  let in_mem = Namer.scan_with_model m corpus.Corpus.files in
  let on_disk = Namer.scan_refs m refs in
  Alcotest.(check bool) "reports found" true (Array.length in_mem.Namer.sr_reports > 0);
  Alcotest.(check string) "disk scan identical" (reports_str in_mem) (reports_str on_disk)

(* sequential streaming holds exactly one source at a time; a pool holds at
   most one per worker domain — never the corpus *)
let gauge_bounded () =
  let corpus = small_corpus () in
  let refs = List.map Namer.ref_of_file corpus.Corpus.files in
  Namer.reset_in_flight_peak ();
  ignore (build_refs_with ~digest_batch:8 ~jobs:1 refs);
  Alcotest.(check int) "sequential: one source in flight" 1
    (Namer.in_flight_sources_peak ());
  Namer.reset_in_flight_peak ();
  ignore (build_refs_with ~digest_batch:16 ~jobs:3 ~cap_domains:false refs);
  let peak = Namer.in_flight_sources_peak () in
  Alcotest.(check bool)
    (Printf.sprintf "pool: peak %d within [1, 3]" peak)
    true
    (peak >= 1 && peak <= 3)

(* per-file isolation across the load boundary: an unreadable ref is
   skipped (and would never be cached), the rest of the scan is intact *)
let failing_ref_skipped () =
  let corpus = small_corpus () in
  let t = Namer.build base_cfg corpus in
  let m = Namer.model_of t in
  let refs = List.map Namer.ref_of_file corpus.Corpus.files in
  let bad =
    { Namer.fr_repo = "repo000"; fr_path = "repo000/src/missing.py";
      fr_load = (fun () -> failwith "simulated I/O error") }
  in
  let clean = Namer.scan_refs m refs in
  let degraded = Namer.scan_refs m (bad :: refs) in
  Alcotest.(check int) "one skip" 1 (List.length degraded.Namer.sr_skipped);
  (match degraded.Namer.sr_skipped with
  | [ sk ] ->
      Alcotest.(check string) "skip names the file" "repo000/src/missing.py"
        sk.Namer.sk_file
  | _ -> Alcotest.fail "expected exactly one skip");
  Alcotest.(check string) "other reports intact" (reports_str clean)
    (reports_str degraded)

let suite =
  [
    Alcotest.test_case "batch and jobs invariant" `Quick batch_and_jobs_invariant;
    Alcotest.test_case "disk refs equal in-memory scan" `Quick disk_refs_equal_memory;
    Alcotest.test_case "in-flight gauge bounded" `Quick gauge_bounded;
    Alcotest.test_case "failing ref is skipped" `Quick failing_ref_skipped;
  ]
