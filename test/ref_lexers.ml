(* Reference lexers: verbatim copies of the pre-zero-copy implementations
   of [Py_lexer.tokenize] and [Java_lexer.tokenize], kept so the golden
   token-stream equivalence test can check the rewritten lexers against
   the exact old behaviour (same tokens, same lines, same errors) on the
   seed corpus and on fuzz mutants.  They build tokens of the *current*
   lexer modules so streams are directly comparable. *)

module Py = struct
  open Namer_pylang.Py_lexer

  let keywords =
    [
      "def"; "class"; "return"; "if"; "elif"; "else"; "for"; "while"; "in";
      "not"; "and"; "or"; "import"; "from"; "as"; "pass"; "break"; "continue";
      "try"; "except"; "finally"; "raise"; "with"; "lambda"; "True"; "False";
      "None"; "is"; "assert"; "del"; "global"; "yield";
    ]

  let is_keyword s = List.mem s keywords

  let is_ident_start c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

  let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
  let is_digit c = c >= '0' && c <= '9'

  let operators =
    [
      "**="; "//="; "=="; "!="; "<="; ">="; "->"; "+="; "-="; "*="; "/="; "%=";
      "&="; "|="; "^="; "<<"; ">>"; "**"; "//"; "+"; "-"; "*"; "/"; "%"; "=";
      "<"; ">"; "("; ")"; "["; "]"; "{"; "}"; ","; ":"; "."; ";"; "@"; "&";
      "|"; "^"; "~";
    ]

  let tokenize src =
    let n = String.length src in
    let pos = ref 0 and line = ref 1 in
    let out = ref [] in
    let emit tok = out := { tok; line = !line } :: !out in
    let indents = ref [ 0 ] in
    let paren_depth = ref 0 in
    let peek i = if !pos + i < n then Some src.[!pos + i] else None in
    let cur () = peek 0 in
    let advance () = incr pos in
    let rec handle_line_start () =
      let width = ref 0 in
      let scanning = ref true in
      while !scanning do
        match cur () with
        | Some ' ' ->
            incr width;
            advance ()
        | Some '\t' ->
            width := !width + 8;
            advance ()
        | _ -> scanning := false
      done;
      match cur () with
      | None -> ()
      | Some '\n' ->
          advance ();
          incr line;
          handle_line_start ()
      | Some '#' ->
          while cur () <> Some '\n' && cur () <> None do
            advance ()
          done;
          handle_line_start ()
      | Some _ ->
          let top () = List.hd !indents in
          if !width > top () then begin
            indents := !width :: !indents;
            emit Indent
          end
          else
            while !width < top () do
              indents := List.tl !indents;
              if !width > top () then
                raise (Lex_error ("inconsistent dedent", !line));
              emit Dedent
            done
    in
    let read_triple_string quote =
      advance ();
      advance ();
      advance ();
      let buf = Buffer.create 64 in
      let rec go () =
        if
          !pos + 2 < n
          && src.[!pos] = quote
          && src.[!pos + 1] = quote
          && src.[!pos + 2] = quote
        then begin
          advance ();
          advance ();
          advance ()
        end
        else
          match cur () with
          | None -> raise (Lex_error ("unterminated triple-quoted string", !line))
          | Some '\n' ->
              incr line;
              Buffer.add_char buf '\n';
              advance ();
              go ()
          | Some c ->
              Buffer.add_char buf c;
              advance ();
              go ()
      in
      go ();
      emit (String (Buffer.contents buf))
    in
    let read_string quote =
      if peek 1 = Some quote && peek 2 = Some quote then read_triple_string quote
      else begin
        advance ();
        let buf = Buffer.create 16 in
        let rec go () =
          match cur () with
          | None -> raise (Lex_error ("unterminated string", !line))
          | Some '\\' -> (
              advance ();
              match cur () with
              | None -> raise (Lex_error ("unterminated string escape", !line))
              | Some c ->
                  Buffer.add_char buf
                    (match c with 'n' -> '\n' | 't' -> '\t' | c -> c);
                  advance ();
                  go ())
          | Some c when c = quote -> advance ()
          | Some '\n' -> raise (Lex_error ("newline in string", !line))
          | Some c ->
              Buffer.add_char buf c;
              advance ();
              go ()
        in
        go ();
        emit (String (Buffer.contents buf))
      end
    in
    let read_number () =
      let start = !pos in
      while
        match cur () with
        | Some c ->
            is_digit c || c = '.' || c = 'x' || c = 'X'
            || (c >= 'a' && c <= 'f')
            || (c >= 'A' && c <= 'F')
        | None -> false
      do
        advance ()
      done;
      emit (Number (String.sub src start (!pos - start)))
    in
    let read_ident () =
      let start = !pos in
      while match cur () with Some c -> is_ident_char c | None -> false do
        advance ()
      done;
      let s = String.sub src start (!pos - start) in
      match cur () with
      | Some (('"' | '\'') as q)
        when String.length s = 1 && (s = "r" || s = "b" || s = "u" || s = "f")
        ->
          read_string q
      | _ -> if is_keyword s then emit (Keyword s) else emit (Ident s)
    in
    let try_operator () =
      let matches op =
        let l = String.length op in
        !pos + l <= n && String.sub src !pos l = op
      in
      match List.find_opt matches operators with
      | Some op ->
          (match op with
          | "(" | "[" | "{" -> incr paren_depth
          | ")" | "]" | "}" -> paren_depth := max 0 (!paren_depth - 1)
          | _ -> ());
          pos := !pos + String.length op;
          emit (Op op);
          true
      | None -> false
    in
    handle_line_start ();
    let rec loop () =
      match cur () with
      | None -> ()
      | Some '\n' ->
          advance ();
          incr line;
          if !paren_depth = 0 then begin
            emit Newline;
            handle_line_start ()
          end;
          loop ()
      | Some '#' ->
          while cur () <> Some '\n' && cur () <> None do
            advance ()
          done;
          loop ()
      | Some (' ' | '\t' | '\r') ->
          advance ();
          loop ()
      | Some '\\' when peek 1 = Some '\n' ->
          advance ();
          advance ();
          incr line;
          loop ()
      | Some (('"' | '\'') as q) ->
          read_string q;
          loop ()
      | Some c when is_digit c ->
          read_number ();
          loop ()
      | Some c when is_ident_start c ->
          read_ident ();
          loop ()
      | Some _ ->
          if try_operator () then loop ()
          else
            raise
              (Lex_error
                 (Printf.sprintf "unexpected character %C" src.[!pos], !line))
    in
    loop ();
    (match !out with
    | { tok = Newline; _ } :: _ | [] -> ()
    | _ -> emit Newline);
    while List.hd !indents > 0 do
      indents := List.tl !indents;
      emit Dedent
    done;
    emit Eof;
    List.rev !out
end

module Java = struct
  open Namer_javalang.Java_lexer

  let keywords =
    [
      "abstract"; "assert"; "boolean"; "break"; "byte"; "case"; "catch";
      "char"; "class"; "const"; "continue"; "default"; "do"; "double"; "else";
      "enum"; "extends"; "final"; "finally"; "float"; "for"; "if";
      "implements"; "import"; "instanceof"; "int"; "interface"; "long";
      "native"; "new"; "package"; "private"; "protected"; "public"; "return";
      "short"; "static"; "strictfp"; "super"; "switch"; "synchronized";
      "this"; "throw"; "throws"; "transient"; "try"; "void"; "volatile";
      "while"; "true"; "false"; "null";
    ]

  let is_keyword s = List.mem s keywords

  let is_ident_start c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = '$'

  let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
  let is_digit c = c >= '0' && c <= '9'

  let operators =
    [
      ">>>="; "<<="; ">>="; ">>>"; "..."; "->"; "::"; "=="; "!="; "<="; ">=";
      "&&"; "||"; "++"; "--"; "+="; "-="; "*="; "/="; "%="; "&="; "|="; "^=";
      "<<"; ">>"; "+"; "-"; "*"; "/"; "%"; "="; "<"; ">"; "!"; "~"; "&"; "|";
      "^"; "?"; ":"; "("; ")"; "["; "]"; "{"; "}"; ";"; ","; "."; "@";
    ]

  let tokenize src =
    let n = String.length src in
    let pos = ref 0 and line = ref 1 in
    let out = ref [] in
    let emit tok = out := { tok; line = !line } :: !out in
    let cur () = if !pos < n then Some src.[!pos] else None in
    let peek k = if !pos + k < n then Some src.[!pos + k] else None in
    let advance () = incr pos in
    let read_escaped quote =
      advance ();
      let buf = Buffer.create 8 in
      let rec go () =
        match cur () with
        | None -> raise (Lex_error ("unterminated literal", !line))
        | Some '\\' -> (
            advance ();
            match cur () with
            | None -> raise (Lex_error ("unterminated escape", !line))
            | Some c ->
                Buffer.add_char buf
                  (match c with 'n' -> '\n' | 't' -> '\t' | c -> c);
                advance ();
                go ())
        | Some c when c = quote -> advance ()
        | Some '\n' -> raise (Lex_error ("newline in literal", !line))
        | Some c ->
            Buffer.add_char buf c;
            advance ();
            go ()
      in
      go ();
      Buffer.contents buf
    in
    let rec loop () =
      match cur () with
      | None -> ()
      | Some '\n' ->
          incr line;
          advance ();
          loop ()
      | Some (' ' | '\t' | '\r') ->
          advance ();
          loop ()
      | Some '/' when peek 1 = Some '/' ->
          while cur () <> Some '\n' && cur () <> None do
            advance ()
          done;
          loop ()
      | Some '/' when peek 1 = Some '*' ->
          advance ();
          advance ();
          let rec skip () =
            match (cur (), peek 1) with
            | Some '*', Some '/' ->
                advance ();
                advance ()
            | Some '\n', _ ->
                incr line;
                advance ();
                skip ()
            | Some _, _ ->
                advance ();
                skip ()
            | None, _ -> raise (Lex_error ("unterminated comment", !line))
          in
          skip ();
          loop ()
      | Some '"' ->
          emit (Str_lit (read_escaped '"'));
          loop ()
      | Some '\'' ->
          emit (Char_lit (read_escaped '\''));
          loop ()
      | Some c when is_digit c ->
          let start = !pos in
          let is_float = ref false in
          let scanning = ref true in
          while !scanning do
            match cur () with
            | Some c when is_digit c || c = '_' -> advance ()
            | Some ('x' | 'X' | 'b' | 'B') when !pos = start + 1 -> advance ()
            | Some ('a' .. 'f' | 'A' .. 'F')
              when String.length src > start + 1
                   && (src.[start + 1] = 'x' || src.[start + 1] = 'X') ->
                advance ()
            | Some '.'
              when match peek 1 with Some d -> is_digit d | None -> false ->
                is_float := true;
                advance ()
            | Some ('e' | 'E')
              when (not
                      (String.length src > start + 1
                      && (src.[start + 1] = 'x' || src.[start + 1] = 'X')))
                   && (match peek 1 with
                      | Some d -> is_digit d || d = '-' || d = '+'
                      | None -> false) ->
                is_float := true;
                advance ();
                advance ()
            | Some ('f' | 'F' | 'd' | 'D') ->
                is_float := true;
                advance ();
                scanning := false
            | Some ('l' | 'L') ->
                advance ();
                scanning := false
            | _ -> scanning := false
          done;
          let text = String.sub src start (!pos - start) in
          emit (if !is_float then Float_lit text else Int_lit text);
          loop ()
      | Some c when is_ident_start c ->
          let start = !pos in
          while match cur () with Some c -> is_ident_char c | None -> false do
            advance ()
          done;
          let s = String.sub src start (!pos - start) in
          emit (if is_keyword s then Keyword s else Ident s);
          loop ()
      | Some _ -> (
          let matches op =
            let l = String.length op in
            !pos + l <= n && String.sub src !pos l = op
          in
          match List.find_opt matches operators with
          | Some op ->
              pos := !pos + String.length op;
              emit (Op op);
              loop ()
          | None ->
              raise
                (Lex_error
                   (Printf.sprintf "unexpected character %C" src.[!pos], !line))
          )
    in
    loop ();
    emit Eof;
    List.rev !out
end
