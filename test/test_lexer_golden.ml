(* Golden token-stream equivalence: the zero-copy lexers must emit
   byte-identical streams (token, payload, line) to the historical copying
   lexers preserved verbatim in [Ref_lexers] — across the whole seed
   corpus of both languages and across seed-deterministic fuzz mutants
   (which drive the error paths: garbage bytes, truncation mid-literal,
   NULs).  Raised [Lex_error]s must match message-and-line too. *)

module Corpus = Namer_corpus.Corpus
module Mutate = Namer_fuzz.Mutate
module Prng = Namer_util.Prng
module Py = Namer_pylang.Py_lexer
module Java = Namer_javalang.Java_lexer

let py_render toks =
  let tok = function
    | Py.Ident s -> "Ident " ^ s
    | Py.Keyword s -> "Keyword " ^ s
    | Py.Number s -> "Number " ^ s
    | Py.String s -> Printf.sprintf "String %S" s
    | Py.Op s -> "Op " ^ s
    | Py.Newline -> "Newline"
    | Py.Indent -> "Indent"
    | Py.Dedent -> "Dedent"
    | Py.Eof -> "Eof"
  in
  String.concat "\n"
    (List.map (fun { Py.tok = t; line } -> Printf.sprintf "%4d %s" line (tok t)) toks)

let java_render toks =
  let tok = function
    | Java.Ident s -> "Ident " ^ s
    | Java.Keyword s -> "Keyword " ^ s
    | Java.Int_lit s -> "Int " ^ s
    | Java.Float_lit s -> "Float " ^ s
    | Java.Str_lit s -> Printf.sprintf "Str %S" s
    | Java.Char_lit s -> Printf.sprintf "Char %S" s
    | Java.Op s -> "Op " ^ s
    | Java.Eof -> "Eof"
  in
  String.concat "\n"
    (List.map (fun { Java.tok = t; line } -> Printf.sprintf "%4d %s" line (tok t)) toks)

(* Run a tokenizer, folding the outcome (stream or lexer error) into one
   comparable string. *)
let outcome render exn_render f src =
  match f src with
  | toks -> "OK\n" ^ render toks
  | exception e -> "ERR " ^ exn_render e

let py_outcome =
  outcome py_render (function
    | Py.Lex_error (msg, line) -> Printf.sprintf "Lex_error(%S, %d)" msg line
    | e -> Printexc.to_string e)

let java_outcome =
  outcome java_render (function
    | Java.Lex_error (msg, line) -> Printf.sprintf "Lex_error(%S, %d)" msg line
    | e -> Printexc.to_string e)

let seed_files lang =
  let cfg = { (Corpus.default_config lang) with Corpus.n_repos = 10; seed = 77 } in
  (Corpus.generate cfg).Corpus.files

let check_corpus lang ref_tok new_tok outcome () =
  let files = seed_files lang in
  Alcotest.(check bool) "corpus non-trivial" true (List.length files > 50);
  List.iter
    (fun f ->
      Alcotest.(check string)
        (Printf.sprintf "%s/%s" f.Corpus.repo f.Corpus.path)
        (outcome ref_tok f.Corpus.source)
        (outcome new_tok f.Corpus.source))
    files

let check_mutants lang ref_tok new_tok outcome () =
  let files = seed_files lang in
  let rng = Prng.create 4242 in
  let sources = Array.of_list (List.map (fun f -> f.Corpus.source) files) in
  for i = 0 to 299 do
    let src = sources.(i mod Array.length sources) in
    let m =
      Mutate.mutate ~rng ~pairs:[ ("width", "height") ] ~bomb_depth:60 ~lang src
    in
    Alcotest.(check string)
      (Printf.sprintf "mutant %d (%s)" i (Mutate.kind_name m.Mutate.m_kind))
      (outcome ref_tok m.Mutate.m_source)
      (outcome new_tok m.Mutate.m_source)
  done

(* Hand-picked edge inputs the generator rarely produces. *)
let py_edges () =
  let cases =
    [
      ""; "\n"; "   \n\t\n"; "x = 'a\\nb'"; "s = \"unterminated";
      "s = \"esc \\"; "s = 'line\nbreak'"; "r'raw\\n'"; "b\"bytes\"";
      "f'fstring'"; "u'unicode'"; "'''triple\nstring'''";
      "\"\"\"doc\n\"\"\""; "'''unterminated\ntriple"; "x = 0xDEADbeef";
      "y = 1.5e3"; "z = 1..2"; "if x:\n  y\n    # over\n  z\n";
      "a = (1,\n 2)\n"; "x = 1 \\\n + 2\n"; "x ** = 2"; "x@y";
      "def f():\n\tpass\n"; "x = '"; "'''";
    ]
  in
  List.iter
    (fun src ->
      Alcotest.(check string)
        (Printf.sprintf "py edge %S" src)
        (py_outcome Ref_lexers.Py.tokenize src)
        (py_outcome Py.tokenize src))
    cases

let java_edges () =
  let cases =
    [
      ""; "\n"; "int x = 0xFF;"; "long l = 10_000L;"; "float f = 1.5f;";
      "double d = 1e-3;"; "double e = 2E+5;"; "int b = 0b1010;";
      "String s = \"a\\tb\";"; "char c = 'x';"; "char n = '\\n';";
      "String u = \"unterminated"; "String e2 = \"esc \\"; "/* open";
      "// line\nint y;"; "a >>>= 2;"; "x...y"; "m::n"; "String nl = \"a\nb\";";
      "int z = 1_2_3;"; "'"; "\"";
    ]
  in
  List.iter
    (fun src ->
      Alcotest.(check string)
        (Printf.sprintf "java edge %S" src)
        (java_outcome Ref_lexers.Java.tokenize src)
        (java_outcome Java.tokenize src))
    cases

let suite =
  [
    Alcotest.test_case "python seed corpus identical" `Quick
      (check_corpus Corpus.Python Ref_lexers.Py.tokenize Py.tokenize py_outcome);
    Alcotest.test_case "java seed corpus identical" `Quick
      (check_corpus Corpus.Java Ref_lexers.Java.tokenize Java.tokenize
         java_outcome);
    Alcotest.test_case "python mutants identical" `Quick
      (check_mutants Corpus.Python Ref_lexers.Py.tokenize Py.tokenize py_outcome);
    Alcotest.test_case "java mutants identical" `Quick
      (check_mutants Corpus.Java Ref_lexers.Java.tokenize Java.tokenize
         java_outcome);
    Alcotest.test_case "python edge cases identical" `Quick py_edges;
    Alcotest.test_case "java edge cases identical" `Quick java_edges;
  ]
