(* Telemetry smoke check (the @telemetry-smoke alias): validates that a
   Chrome trace written by `namer ... --trace` is non-empty, well-formed
   JSON, covers every pipeline stage, and has monotonically ordered
   timestamps.  Exits non-zero with a diagnostic otherwise. *)

module J = Namer_util.Json

let required_stages =
  [
    "parse"; "analyze"; "astplus"; "namepaths"; "pair-mining"; "pattern-mining";
    "scan"; "classifier";
  ]

let fail fmt = Printf.ksprintf (fun msg -> prerr_endline ("FAIL: " ^ msg); exit 1) fmt

let () =
  let path = if Array.length Sys.argv > 1 then Sys.argv.(1) else fail "usage: check_trace TRACE.json" in
  let content =
    try
      let ic = open_in_bin path in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      s
    with Sys_error e -> fail "cannot read %s: %s" path e
  in
  if String.trim content = "" then fail "%s is empty" path;
  let json =
    match J.parse content with
    | Ok j -> j
    | Error msg -> fail "%s is not valid JSON: %s" path msg
  in
  let events =
    match json with
    | J.Obj fields -> (
        match List.assoc_opt "traceEvents" fields with
        | Some (J.List evs) -> evs
        | _ -> fail "%s has no traceEvents array" path)
    | _ -> fail "%s top level is not an object" path
  in
  if events = [] then fail "%s contains no trace events" path;
  let field name ev =
    match ev with
    | J.Obj fields -> List.assoc_opt name fields
    | _ -> fail "trace event is not an object"
  in
  let names =
    List.filter_map
      (fun ev -> match field "name" ev with Some (J.String s) -> Some s | _ -> None)
      events
  in
  List.iter
    (fun stage ->
      if not (List.mem stage names) then
        fail "stage %S missing from trace (have: %s)" stage
          (String.concat ", " (List.sort_uniq compare names)))
    required_stages;
  let ts ev =
    match field "ts" ev with
    | Some (J.Float f) -> f
    | Some (J.Int i) -> float_of_int i
    | _ -> fail "trace event without numeric ts"
  in
  let rec check_monotonic prev = function
    | [] -> ()
    | ev :: rest ->
        let t = ts ev in
        if t < prev then fail "ts fields not monotonically ordered (%f after %f)" t prev;
        check_monotonic t rest
  in
  check_monotonic neg_infinity events;
  Printf.printf "OK: %d events, %d distinct stages, ts monotonic\n"
    (List.length events)
    (List.length (List.sort_uniq compare names))
