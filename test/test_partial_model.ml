(* Partial models and the merge algebra: train(A+B) ≡ merge(train A,
   train B).  The qcheck properties exercise every split, permutation and
   parenthesization of the corpus; the differential goldens check the
   merged model against the directly-trained one down to the byte; and
   damaged partial files are rejected with errors that name the failing
   section, mirroring test_model.ml. *)

module Namer = Namer_core.Namer
module Partial = Namer_core.Namer.Partial
module PM = Namer_model.Partial_model
module Corpus = Namer_corpus.Corpus
module Miner = Namer_mining.Miner
module Snapshot = Namer_model.Snapshot
module W = Namer_model.Binio.W
module Prng = Namer_util.Prng

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let corpus_cfg ?(seed = 11) ?(lang = Corpus.Python) () =
  {
    (Corpus.default_config lang) with
    Corpus.n_repos = 8;
    files_per_repo = (4, 6);
    seed;
  }

(* classifier off: its labeled sample draws depend on statement order, so
   it is retrained per deployment, not merged — the algebra's contract
   covers everything up to the mined model (see DESIGN.md §13) *)
let namer_cfg =
  {
    Namer.default_config with
    use_classifier = false;
    miner = { Miner.default_config with Miner.min_support = 5; min_path_freq = 3 };
  }

let corpus = lazy (Corpus.generate (corpus_cfg ()))
let full = lazy (Namer.build namer_cfg (Lazy.force corpus))

let reports (r : Namer.scan_result) =
  Array.to_list r.Namer.sr_reports
  |> List.map (fun (x : Namer.report) ->
         Printf.sprintf "%s:%d:%s:%s:%s:%s" x.Namer.r_file x.Namer.r_line
           x.Namer.r_prefix x.Namer.r_found x.Namer.r_suggested x.Namer.r_kind)
  |> String.concat "\n"

let full_reports =
  lazy
    (let c = Lazy.force corpus in
     reports
       (Namer.scan_with_model ~jobs:1 (Namer.model_of (Lazy.force full)) c.Corpus.files))

let slice (c : Corpus.t) files commits =
  { c with Corpus.files; injections = []; benigns = []; commits }

(* Deal files and commits into [k] slices by a seeded random assignment —
   every file lands in exactly one slice, so the slices concatenate (in
   any order) to a permutation of the corpus. *)
let random_slices prng k (c : Corpus.t) =
  let files = Array.make k [] and commits = Array.make k [] in
  List.iter
    (fun f ->
      let i = Prng.int prng k in
      files.(i) <- f :: files.(i))
    (List.rev c.Corpus.files);
  List.iter
    (fun cm ->
      let i = Prng.int prng k in
      commits.(i) <- cm :: commits.(i))
    (List.rev c.Corpus.commits);
  List.init k (fun i -> slice c files.(i) commits.(i))

let split_at k xs =
  let rec go i acc = function
    | rest when i = k -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | x :: rest -> go (i + 1) (x :: acc) rest
  in
  go 0 [] xs

(* -------- differential goldens -------- *)

(* Contiguous halves merged in corpus order: the replayed id assignment
   matches the sequential one exactly, so the merged model is the full
   build's model down to the serialized byte (and hence the hash). *)
let test_halves_merge_to_identical_model () =
  let c = Lazy.force corpus in
  let t_full = Lazy.force full in
  let fa, fb = split_at (List.length c.Corpus.files / 2) c.Corpus.files in
  let ca, cb = split_at (List.length c.Corpus.commits / 2) c.Corpus.commits in
  let pa = Partial.of_corpus namer_cfg (slice c fa ca) in
  let pb = Partial.of_corpus namer_cfg (slice c fb cb) in
  let merged = Partial.merge pa pb in
  check_int "merged partial covers every file" (List.length c.Corpus.files)
    (Partial.n_files merged);
  let t_merged = Partial.finalize namer_cfg merged in
  (* hash both now, against the same interner state *)
  let h_full = (Namer.model_of t_full).Namer.m_hash in
  let h_merged = (Namer.model_of t_merged).Namer.m_hash in
  check_string "merged model hash = full-train model hash" h_full h_merged;
  let r =
    reports (Namer.scan_with_model ~jobs:1 (Namer.model_of t_merged) c.Corpus.files)
  in
  check_bool "some reports to compare" true (String.length (Lazy.force full_reports) > 0);
  check_string "scan reports byte-identical to the full train"
    (Lazy.force full_reports) r

let test_jobs_invariance () =
  let c = Lazy.force corpus in
  let fa, fb = split_at (List.length c.Corpus.files / 2) c.Corpus.files in
  let ca, cb = split_at (List.length c.Corpus.commits / 2) c.Corpus.commits in
  let par_cfg = { namer_cfg with Namer.jobs = 4; cap_domains = false } in
  let enc p = fst (PM.encode p) in
  let pa1 = Partial.of_corpus namer_cfg (slice c fa ca) in
  let pa4 = Partial.of_corpus par_cfg (slice c fa ca) in
  check_bool "partial bytes identical at jobs=1 and jobs=4" true
    (String.equal (enc pa1) (enc pa4));
  let pb = Partial.of_corpus namer_cfg (slice c fb cb) in
  let t1 = Partial.finalize namer_cfg (Partial.merge pa1 pb) in
  let t4 = Partial.finalize par_cfg (Partial.merge pa4 pb) in
  check_string "finalized reports identical at jobs=1 and jobs=4"
    (reports (Namer.scan_with_model ~jobs:1 (Namer.model_of t1) c.Corpus.files))
    (reports
       (Namer.scan_with_model ~jobs:4 ~cap_domains:false (Namer.model_of t4)
          c.Corpus.files))

(* -------- the algebra, property-tested -------- *)

let to_alcotest = QCheck_alcotest.to_alcotest

(* Any split of the corpus, merged in any order, finalizes to a model
   whose scan reports equal the full train's — commutativity up to
   report identity (reports are sorted strings; only internal ids move
   when slices permute). *)
let prop_split_permute_merge =
  QCheck.Test.make ~name:"split+permute+merge ≡ full train (reports)" ~count:6
    QCheck.(pair (int_range 2 4) (int_range 0 10_000))
    (fun (k, seed) ->
      let c = Lazy.force corpus in
      let expect = Lazy.force full_reports in
      let prng = Prng.create seed in
      let parts =
        List.map (Partial.of_corpus namer_cfg) (random_slices prng k c)
        |> Array.of_list
      in
      Prng.shuffle prng parts;
      let merged = Partial.merge_all (Array.to_list parts) in
      let t = Partial.finalize namer_cfg merged in
      String.equal expect
        (reports (Namer.scan_with_model ~jobs:1 (Namer.model_of t) c.Corpus.files)))

(* merge is associative on the nose: both parenthesizations serialize to
   the same bytes. *)
let prop_merge_associative =
  QCheck.Test.make ~name:"merge is associative (serialized bytes)" ~count:8
    (QCheck.int_range 0 10_000)
    (fun seed ->
      let c = Lazy.force corpus in
      let prng = Prng.create seed in
      match List.map (Partial.of_corpus namer_cfg) (random_slices prng 3 c) with
      | [ a; b; c3 ] ->
          let left = Partial.merge (Partial.merge a b) c3 in
          let right = Partial.merge a (Partial.merge b c3) in
          String.equal (fst (PM.encode left)) (fst (PM.encode right))
      | _ -> false)

let prop_empty_identity =
  QCheck.Test.make ~name:"empty is a two-sided identity" ~count:4
    (QCheck.int_range 0 10_000)
    (fun seed ->
      let c = Lazy.force corpus in
      let prng = Prng.create seed in
      match List.map (Partial.of_corpus namer_cfg) (random_slices prng 2 c) with
      | [ p; _ ] ->
          let bytes = fst (PM.encode p) in
          String.equal bytes (fst (PM.encode (Partial.merge Partial.empty p)))
          && String.equal bytes (fst (PM.encode (Partial.merge p Partial.empty)))
          && Partial.is_empty (Partial.merge Partial.empty Partial.empty)
      | _ -> false)

(* -------- rejection -------- *)

let expect_merge_error name f fragment =
  match f () with
  | (_ : PM.t) -> Alcotest.failf "%s: merge accepted incompatible partials" name
  | exception PM.Merge_error msg ->
      check_bool
        (Printf.sprintf "%s: error mentions %S (got %S)" name fragment msg)
        true
        (let flen = String.length fragment and mlen = String.length msg in
         let rec scan i =
           i + flen <= mlen && (String.sub msg i flen = fragment || scan (i + 1))
         in
         scan 0)

let test_rejects_remerge () =
  let c = Lazy.force corpus in
  let fa, fb = split_at (List.length c.Corpus.files / 2) c.Corpus.files in
  let pa = Partial.of_corpus namer_cfg (slice c fa []) in
  let pb = Partial.of_corpus namer_cfg (slice c fb []) in
  expect_merge_error "self re-merge" (fun () -> Partial.merge pa pa) "disjoint";
  let ab = Partial.merge pa pb in
  expect_merge_error "slice already merged in"
    (fun () -> Partial.merge ab pa)
    "disjoint"

let test_rejects_incompatible () =
  let c = Lazy.force corpus in
  let fa, _ = split_at 3 c.Corpus.files in
  let pa = Partial.of_corpus namer_cfg (slice c fa []) in
  let jc = Corpus.generate (corpus_cfg ~lang:Corpus.Java ()) in
  let pj = Partial.of_corpus namer_cfg (slice jc jc.Corpus.files []) in
  expect_merge_error "language mismatch" (fun () -> Partial.merge pa pj) "languages";
  let capped =
    {
      namer_cfg with
      Namer.miner = { namer_cfg.Namer.miner with Miner.max_stmt_paths = 5 };
    }
  in
  let _, fb = split_at 3 c.Corpus.files in
  let pc = Partial.of_corpus capped (slice c fb []) in
  expect_merge_error "path-cap mismatch" (fun () -> Partial.merge pa pc) "cap"

(* -------- persistence: round trip and damage -------- *)

let partial_path () = Filename.temp_file "test_partial" ".nprt"

let saved_partial =
  lazy
    (let c = Lazy.force corpus in
     let fa, fb = split_at (List.length c.Corpus.files / 2) c.Corpus.files in
     let pa = Partial.of_corpus namer_cfg (slice c fa c.Corpus.commits) in
     let pb = Partial.of_corpus namer_cfg (slice c fb []) in
     Partial.merge pa pb)

let test_save_load_round_trip () =
  let p = Lazy.force saved_partial in
  let path = partial_path () in
  let saved_hash = Partial.save p ~path in
  let loaded, loaded_hash = Partial.load ~path in
  Sys.remove path;
  check_string "hash survives the disk round trip" saved_hash loaded_hash;
  check_bool "partial survives byte-identically" true
    (String.equal (fst (PM.encode p)) (fst (PM.encode loaded)));
  check_int "file count survives" (Partial.n_files p) (Partial.n_files loaded);
  check_int "statement count survives" (Partial.n_stmts p) (Partial.n_stmts loaded)

let expect_load_error name f fragment =
  match f () with
  | (_ : PM.t * string) ->
      Alcotest.failf "%s: load accepted a damaged partial" name
  | exception Snapshot.Error msg ->
      check_bool
        (Printf.sprintf "%s: error mentions %S (got %S)" name fragment msg)
        true
        (let flen = String.length fragment and mlen = String.length msg in
         let rec scan i =
           i + flen <= mlen && (String.sub msg i flen = fragment || scan (i + 1))
         in
         scan 0)

let damaged_copy ~transform =
  let p = Lazy.force saved_partial in
  let path = partial_path () in
  ignore (Partial.save p ~path);
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let oc = open_out_bin path in
  output_string oc (transform s);
  close_out oc;
  path

let test_rejects_corrupted () =
  let flip s =
    let b = Bytes.of_string s in
    let i = Bytes.length b / 2 in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xff));
    Bytes.to_string b
  in
  let path = damaged_copy ~transform:flip in
  expect_load_error "flipped byte" (fun () -> Partial.load ~path) "checksum";
  Sys.remove path

let test_rejects_version_skew () =
  let bytes, _ = Snapshot.encode ~magic:PM.partial_magic ~version:99 [] in
  let path = partial_path () in
  Snapshot.write ~path bytes;
  expect_load_error "future version" (fun () -> Partial.load ~path)
    "format version 99";
  Sys.remove path

(* Rewrite one section of a valid partial and re-encode the container (so
   magic/version/checksum all pass): the decode error must name the
   damaged section, not just a byte offset. *)
let with_replaced_section name payload =
  let p = Lazy.force saved_partial in
  let bytes, _ = PM.encode p in
  let sections, _ =
    Snapshot.decode ~magic:PM.partial_magic ~desc:"partial model"
      ~version:PM.partial_version bytes
  in
  let sections =
    List.map (fun (n, pl) -> if n = name then (n, payload) else (n, pl)) sections
  in
  let bytes, _ =
    Snapshot.encode ~magic:PM.partial_magic ~version:PM.partial_version sections
  in
  let path = partial_path () in
  Snapshot.write ~path bytes;
  path

let test_error_names_corrupt_section () =
  let path = with_replaced_section "stmts" "\xff\xff\xff\xff\xff\xff" in
  expect_load_error "garbage stmts payload" (fun () -> Partial.load ~path)
    "\"stmts\" section is corrupt";
  Sys.remove path;
  let path = with_replaced_section "vocab" "\xff\xff\xff\xff" in
  expect_load_error "garbage vocab payload" (fun () -> Partial.load ~path)
    "\"vocab\" section is corrupt";
  Sys.remove path

let test_error_names_malformed_section () =
  (* a well-formed stmts record pointing at a file index that does not
     exist: reader-valid, semantically malformed *)
  let w = W.create () in
  W.u32 w 1;
  W.u32 w 999_999;
  W.u32 w 1;
  W.i64 w 0;
  W.u32 w 0;
  let path = with_replaced_section "stmts" (W.contents w) in
  expect_load_error "out-of-range file index" (fun () -> Partial.load ~path)
    "\"stmts\" section holds malformed data";
  expect_load_error "out-of-range detail" (fun () -> Partial.load ~path)
    "out of range";
  Sys.remove path

let test_rejects_missing_section () =
  let p = Lazy.force saved_partial in
  let bytes, _ = PM.encode p in
  let sections, _ =
    Snapshot.decode ~magic:PM.partial_magic ~desc:"partial model"
      ~version:PM.partial_version bytes
  in
  let bytes, _ =
    Snapshot.encode ~magic:PM.partial_magic ~version:PM.partial_version
      (List.filter (fun (n, _) -> n <> "pairs") sections)
  in
  let path = partial_path () in
  Snapshot.write ~path bytes;
  expect_load_error "dropped pairs section" (fun () -> Partial.load ~path)
    "missing its \"pairs\" section";
  Sys.remove path

let suite =
  [
    Alcotest.test_case "halves merge to the identical model" `Quick
      test_halves_merge_to_identical_model;
    Alcotest.test_case "partials and merges are jobs-invariant" `Quick
      test_jobs_invariance;
    to_alcotest prop_split_permute_merge;
    to_alcotest prop_merge_associative;
    to_alcotest prop_empty_identity;
    Alcotest.test_case "rejects re-merging a slice" `Quick test_rejects_remerge;
    Alcotest.test_case "rejects incompatible partials" `Quick
      test_rejects_incompatible;
    Alcotest.test_case "save → load round trip" `Quick test_save_load_round_trip;
    Alcotest.test_case "rejects corrupted files" `Quick test_rejects_corrupted;
    Alcotest.test_case "rejects version skew" `Quick test_rejects_version_skew;
    Alcotest.test_case "errors name the corrupt section" `Quick
      test_error_names_corrupt_section;
    Alcotest.test_case "errors name the malformed section" `Quick
      test_error_names_malformed_section;
    Alcotest.test_case "rejects a missing section" `Quick
      test_rejects_missing_section;
  ]
