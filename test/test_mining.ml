(* Tests for FP-tree mining (Algorithms 1–2, Figure 3), confusing-pair
   mining, and the end-to-end miner on constructed corpora. *)

module Namepath = Namer_namepath.Namepath
module Pattern = Namer_pattern.Pattern
module Fptree = Namer_mining.Fptree
module Miner = Namer_mining.Miner
module Confusing_pairs = Namer_mining.Confusing_pairs
module Tree = Namer_tree.Tree

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---------------- FP-tree (Figure 3) ---------------- *)

(* Insert the item lists behind Figure 3(a); [fold_last_nodes] must surface
   the four (condition, deduction) rows of Figure 3(b).  The tree stores
   interned item ids, so the test keeps its own label table. *)
let fig3_label = [| "NP1"; "NP2"; "NP3"; "NP4"; "NP5"; "NP6" |]
let fig3_id s = 1 + (Array.to_list fig3_label |> List.mapi (fun i l -> (l, i)) |> List.assoc s)

let build_figure3 () =
  let t = Fptree.create () in
  let ins items n =
    for _ = 1 to n do
      Fptree.insert t (List.map fig3_id items)
    done
  in
  ins [ "NP1"; "NP2" ] 33;
  ins [ "NP1"; "NP3"; "NP5" ] 15;
  ins [ "NP1"; "NP3"; "NP4" ] 14;
  ins [ "NP1"; "NP3"; "NP4"; "NP6" ] 13;
  t

let test_figure3_structure () =
  let t = build_figure3 () in
  check_int "six distinct nodes" 6 (Fptree.size t)

let test_figure3_patterns () =
  let t = build_figure3 () in
  let rows =
    Fptree.fold_last_nodes t
      ~f:(fun acc ~path_items ~support ->
        (List.map (fun i -> fig3_label.(i - 1)) path_items, support) :: acc)
      []
    |> List.sort compare
  in
  let expect =
    List.sort compare
      [
        ([ "NP1"; "NP2" ], 33);
        ([ "NP1"; "NP3"; "NP5" ], 15);
        (* NP4 carries its own insertions plus the NP6 pass-throughs *)
        ([ "NP1"; "NP3"; "NP4" ], 27);
        ([ "NP1"; "NP3"; "NP4"; "NP6" ], 13);
      ]
  in
  Alcotest.(check (list (pair (list string) int))) "figure 3(b) rows" expect rows

let test_fptree_shared_prefix () =
  let t = Fptree.create () in
  Fptree.insert t [ 1; 2 ];
  Fptree.insert t [ 1; 3 ];
  check_int "prefix shared" 3 (Fptree.size t)

let test_fptree_empty_insert () =
  let t = Fptree.create () in
  Fptree.insert t [];
  check_int "no-op" 0 (Fptree.size t)

(* ---------------- splitPaths ---------------- *)

let np = Namepath.of_string

let paths_abc =
  [ np "A 0 B 0 key"; np "A 1 C 0 value"; np "A 2 D 0 value"; np "A 3 E 0 NUM" ]

let test_split_confusing () =
  let pairs = Confusing_pairs.create () in
  Confusing_pairs.add_pair pairs ("name", "key");
  let splits = Miner.split_paths ~kind:`Confusing ~pairs paths_abc in
  (* only the path ending in the correct word "key" becomes a deduction *)
  check_int "one split" 1 (List.length splits);
  let cond, deduct = List.hd splits in
  check_int "three condition paths" 3 (List.length cond);
  check_bool "deduction ends with key" true
    ((List.hd deduct).Namepath.end_node = Some "key")

let test_split_consistency () =
  let pairs = Confusing_pairs.create () in
  let splits = Miner.split_paths ~kind:`Consistency ~pairs paths_abc in
  (* only the (value, value) pair qualifies; NUM is not a name *)
  check_int "one pair" 1 (List.length splits);
  let cond, deduct = List.hd splits in
  check_int "deduction is the symbolic pair" 2 (List.length deduct);
  check_bool "both symbolic" true (List.for_all Namepath.is_symbolic deduct);
  check_int "rest in condition" 2 (List.length cond)

let test_combinations () =
  let c = Miner.combinations ~max_subset_size:2 [ 1; 2; 3 ] in
  check_bool "contains full set" true (List.mem [ 1; 2; 3 ] c);
  check_bool "contains singletons" true (List.mem [ 1 ] c && List.mem [ 3 ] c);
  check_bool "contains pairs" true (List.mem [ 1; 2 ] c);
  check_bool "empty condition allowed" true (List.mem [] c);
  check_int "1 full + empty + 3 singles + 3 pairs" 8 (List.length c)

(* ---------------- confusing pairs ---------------- *)

let test_pairs_prune () =
  let p = Confusing_pairs.create () in
  for _ = 1 to 5 do
    Confusing_pairs.add_pair p ("True", "Equal")
  done;
  Confusing_pairs.add_pair p ("one", "off");
  let kept = Confusing_pairs.prune p ~min_count:3 in
  check_bool "frequent pair kept" true (Confusing_pairs.mem kept ("True", "Equal"));
  check_bool "rare pair dropped" false (Confusing_pairs.mem kept ("one", "off"));
  check_bool "orientation matters" false (Confusing_pairs.mem kept ("Equal", "True"));
  check_bool "correct word registry" true (Confusing_pairs.is_correct_word kept "Equal")

let test_pairs_identity_excluded () =
  let p = Confusing_pairs.create () in
  Confusing_pairs.add_pair p ("same", "same");
  check_int "identity pairs ignored" 0 (Confusing_pairs.total_pairs p)

let test_pairs_from_commit_trees () =
  let stmt name =
    Tree.node "Assign" [ Tree.node "NameStore" [ Tree.leaf name ]; Tree.node "Num" [ Tree.leaf "1" ] ]
  in
  let p = Confusing_pairs.create () in
  Confusing_pairs.add_commit p
    ~before:(Tree.node "Module" [ stmt "assertTrue" ])
    ~after:(Tree.node "Module" [ stmt "assertEqual" ]);
  check_bool "pair mined from diff" true (Confusing_pairs.mem p ("True", "Equal"))

(* ---------------- end-to-end mining ---------------- *)

(* A corpus of digests: 50 statements satisfying the idiom (callee ends
   with "Equal") and 3 deviants (callee ends with "True"). *)
let mk_stmt word extra =
  Pattern.Stmt_paths.of_paths
    (List.map np
       [
         "NumArgs(2) 0 Call 0 AttributeLoad 0 NameLoad 0 NumST(1) 0 TestCase 0 self";
         "NumArgs(2) 0 Call 0 AttributeLoad 1 Attr 0 NumST(2) 0 TestCase 0 assert";
         "NumArgs(2) 0 Call 0 AttributeLoad 1 Attr 0 NumST(2) 1 TestCase 0 " ^ word;
         "NumArgs(2) 0 Call 2 Num 0 NumST(1) 0 NUM";
         "NumArgs(2) 0 Call 1 AttributeLoad 0 NameLoad 0 NumST(1) 0 " ^ extra;
       ])

let mine_corpus () =
  let pairs = Confusing_pairs.create () in
  Confusing_pairs.add_pair ~count:10 pairs ("True", "Equal");
  let stmts =
    List.init 50 (fun i -> mk_stmt "Equal" (Printf.sprintf "var%d" i))
    @ List.init 3 (fun i -> mk_stmt "True" (Printf.sprintf "bad%d" i))
  in
  let config =
    { Miner.default_config with min_support = 10; min_path_freq = 5; max_subset_size = 2 }
  in
  (Miner.mine ~config ~kind:`Confusing ~pairs stmts, stmts)

let test_miner_end_to_end () =
  let result, stmts = mine_corpus () in
  check_bool "patterns mined" true (Pattern.Store.size result.Miner.store > 0);
  (* the buggy statements violate at least one kept pattern *)
  let buggy = List.nth stmts 51 in
  let violated =
    Pattern.Store.candidates result.Miner.store buggy
    |> List.exists (fun p ->
           match Pattern.check p buggy with Pattern.Violated _ -> true | _ -> false)
  in
  check_bool "deviant statement violates" true violated;
  (* clean statements satisfy every candidate pattern *)
  let clean = List.hd stmts in
  let ok =
    Pattern.Store.candidates result.Miner.store clean
    |> List.for_all (fun p -> Pattern.check p clean <> Pattern.No_match)
  in
  check_bool "idiomatic statement matches candidates" true ok

let test_miner_prunes_low_satisfaction () =
  (* half Equal / half True: satisfaction ratio ~0.5 < 0.8 → pattern dropped *)
  let pairs = Confusing_pairs.create () in
  Confusing_pairs.add_pair ~count:10 pairs ("True", "Equal");
  let stmts =
    List.init 25 (fun i -> mk_stmt "Equal" (Printf.sprintf "v%d" i))
    @ List.init 25 (fun i -> mk_stmt "True" (Printf.sprintf "w%d" i))
  in
  let config =
    { Miner.default_config with min_support = 10; min_path_freq = 5 }
  in
  let result = Miner.mine ~config ~kind:`Confusing ~pairs stmts in
  check_int "contested idiom pruned" 0 (Pattern.Store.size result.Miner.store)

let test_miner_dataset_stats () =
  let result, _ = mine_corpus () in
  let all_good =
    Hashtbl.fold
      (fun _ (s : Miner.pattern_stats) acc ->
        acc && s.Miner.matches >= s.Miner.sats && s.Miner.matches >= s.Miner.viols)
      result.Miner.dataset_stats true
  in
  check_bool "stats internally consistent" true all_good;
  check_bool "stats cover kept patterns" true
    (Hashtbl.length result.Miner.dataset_stats = Pattern.Store.size result.Miner.store)

let test_consistency_mining_end_to_end () =
  let pairs = Confusing_pairs.create () in
  let mk attr value =
    Pattern.Stmt_paths.of_paths
      (List.map np
         [
           "Assign 0 AttributeStore 0 NameLoad 0 NumST(1) 0 Object 0 self";
           "Assign 0 AttributeStore 1 Attr 0 NumST(1) 0 " ^ attr;
           "Assign 1 NameLoad 0 NumST(1) 0 " ^ value;
         ])
  in
  let stmts =
    List.init 40 (fun i -> mk (Printf.sprintf "f%d" (i mod 8)) (Printf.sprintf "f%d" (i mod 8)))
    @ [ mk "help" "docstring" ]
  in
  let config = { Miner.default_config with min_support = 10; min_path_freq = 5 } in
  let result = Miner.mine ~config ~kind:`Consistency ~pairs stmts in
  check_bool "consistency pattern mined" true (Pattern.Store.size result.Miner.store > 0);
  let bad = List.nth stmts 40 in
  let violated =
    Pattern.Store.candidates result.Miner.store bad
    |> List.exists (fun p ->
           match Pattern.check p bad with Pattern.Violated _ -> true | _ -> false)
  in
  check_bool "inconsistent statement violates" true violated

let suite =
  [
    Alcotest.test_case "figure 3(a): tree structure" `Quick test_figure3_structure;
    Alcotest.test_case "figure 3(b): generated rows" `Quick test_figure3_patterns;
    Alcotest.test_case "fp-tree: shared prefixes" `Quick test_fptree_shared_prefix;
    Alcotest.test_case "fp-tree: empty insert" `Quick test_fptree_empty_insert;
    Alcotest.test_case "splitPaths: confusing" `Quick test_split_confusing;
    Alcotest.test_case "splitPaths: consistency" `Quick test_split_consistency;
    Alcotest.test_case "combinations" `Quick test_combinations;
    Alcotest.test_case "pairs: pruning" `Quick test_pairs_prune;
    Alcotest.test_case "pairs: identity excluded" `Quick test_pairs_identity_excluded;
    Alcotest.test_case "pairs: from commit trees" `Quick test_pairs_from_commit_trees;
    Alcotest.test_case "miner: end to end (confusing)" `Quick test_miner_end_to_end;
    Alcotest.test_case "miner: satisfaction pruning" `Quick test_miner_prunes_low_satisfaction;
    Alcotest.test_case "miner: dataset stats" `Quick test_miner_dataset_stats;
    Alcotest.test_case "miner: end to end (consistency)" `Quick
      test_consistency_mining_end_to_end;
  ]

(* ---------------- ordering mining (extension) ---------------- *)

let test_split_ordering () =
  let pairs = Confusing_pairs.create () in
  let paths =
    List.map np
      [
        "Call 0 B 0 resize"; "Call 1 C 0 width"; "Call 2 D 0 height";
        "Call 3 E 0 NUM";
      ]
  in
  let splits =
    Miner.split_paths ~kind:(`Ordering [ ("width", "height") ]) ~pairs paths
  in
  check_int "one ordered split" 1 (List.length splits);
  let cond, deduct = List.hd splits in
  check_int "two-path deduction" 2 (List.length deduct);
  check_int "rest in condition" 2 (List.length cond);
  check_bool "deduction concrete" true
    (List.for_all (fun d -> not (Namepath.is_symbolic d)) deduct)

let test_ordering_mining_end_to_end () =
  let pairs = Confusing_pairs.create () in
  let mk a b extra =
    Pattern.Stmt_paths.of_paths
      (List.map np
         [
           "NumArgs(2) 0 Call 0 AttributeLoad 1 Attr 0 NumST(1) 0 resize";
           "NumArgs(2) 0 Call 1 NameLoad 0 NumST(1) 0 " ^ a;
           "NumArgs(2) 0 Call 2 NameLoad 0 NumST(1) 0 " ^ b;
           "Assign 0 NameStore 0 NumST(1) 0 " ^ extra;
         ])
  in
  let stmts =
    List.init 40 (fun i -> mk "width" "height" (Printf.sprintf "v%d" i))
    @ [ mk "height" "width" "bad" ]
  in
  let config = { Miner.default_config with min_support = 10; min_path_freq = 5 } in
  let result =
    Miner.mine ~config ~kind:(`Ordering [ ("width", "height") ]) ~pairs stmts
  in
  check_bool "ordering patterns mined" true (Pattern.Store.size result.Miner.store > 0);
  let bad = List.nth stmts 40 in
  let violated =
    Pattern.Store.candidates result.Miner.store bad
    |> List.exists (fun p ->
           match Pattern.check p bad with Pattern.Violated _ -> true | _ -> false)
  in
  check_bool "swap detected" true violated

let ordering_suite =
  [
    Alcotest.test_case "splitPaths: ordering" `Quick test_split_ordering;
    Alcotest.test_case "miner: end to end (ordering)" `Quick test_ordering_mining_end_to_end;
  ]

let suite = suite @ ordering_suite
