(* Tests for the AST+ transformation and the name-path abstraction,
   anchored on the paper's Figure 2 and Examples 3.3/3.5. *)

module Tree = Namer_tree.Tree
module Astplus = Namer_namepath.Astplus
module Namepath = Namer_namepath.Namepath
module Origins = Namer_namepath.Origins

let check_str = Alcotest.(check string)
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let figure2_stmt () =
  (* self.assertTrue(picture.rotate_angle, 90) *)
  Tree.node "Call"
    [
      Tree.node "AttributeLoad"
        [
          Tree.node "NameLoad" [ Tree.leaf "self" ];
          Tree.node "Attr" [ Tree.leaf "assertTrue" ];
        ];
      Tree.node "AttributeLoad"
        [
          Tree.node "NameLoad" [ Tree.leaf "picture" ];
          Tree.node "Attr" [ Tree.leaf "rotate_angle" ];
        ];
      Tree.node "Num" [ Tree.leaf "90" ];
    ]

let figure2_origins =
  Origins.of_alists ~vars:[ ("self", "TestCase") ] ()

let figure2_plus () = Astplus.transform ~origins:figure2_origins (figure2_stmt ())

let test_figure2_astplus () =
  check_str "figure 2(c)"
    "(NumArgs(2) (Call (AttributeLoad (NameLoad (NumST(1) (TestCase self))) (Attr (NumST(2) (TestCase assert) (TestCase True)))) (AttributeLoad (NameLoad (NumST(1) picture)) (Attr (NumST(2) rotate angle))) (Num (NumST(1) NUM))))"
    (Tree.to_sexp (figure2_plus ()))

let test_figure2_name_paths () =
  let paths = Namepath.extract (figure2_plus ()) |> List.map Namepath.to_string in
  let expect =
    [
      "NumArgs(2) 0 Call 0 AttributeLoad 0 NameLoad 0 NumST(1) 0 TestCase 0 self";
      "NumArgs(2) 0 Call 0 AttributeLoad 1 Attr 0 NumST(2) 0 TestCase 0 assert";
      "NumArgs(2) 0 Call 0 AttributeLoad 1 Attr 0 NumST(2) 1 TestCase 0 True";
      "NumArgs(2) 0 Call 1 AttributeLoad 0 NameLoad 0 NumST(1) 0 picture";
      "NumArgs(2) 0 Call 1 AttributeLoad 1 Attr 0 NumST(2) 0 rotate";
      "NumArgs(2) 0 Call 1 AttributeLoad 1 Attr 0 NumST(2) 1 angle";
      "NumArgs(2) 0 Call 2 Num 0 NumST(1) 0 NUM";
    ]
  in
  Alcotest.(check (list string)) "figure 2(d)" expect paths

let test_no_analysis_undecorated () =
  let plus = Astplus.transform ~origins:Origins.none (figure2_stmt ()) in
  check_str "w/o A: no origin nodes"
    "(NumArgs(2) (Call (AttributeLoad (NameLoad (NumST(1) self)) (Attr (NumST(2) assert True))) (AttributeLoad (NameLoad (NumST(1) picture)) (Attr (NumST(2) rotate angle))) (Num (NumST(1) NUM))))"
    (Tree.to_sexp plus)

let test_literal_abstraction () =
  let t = Tree.node "Assign" [ Tree.node "NameStore" [ Tree.leaf "x" ]; Tree.node "Str" [ Tree.leaf "hello world" ] ] in
  let plus = Astplus.transform ~origins:Origins.none t in
  check_str "strings become STR" "(Assign (NameStore (NumST(1) x)) (Str (NumST(1) STR)))"
    (Tree.to_sexp plus)

let test_numargs_on_def () =
  let t =
    Tree.node "FunctionDef"
      [
        Tree.node "FuncName" [ Tree.leaf "f" ];
        Tree.node "NameParam" [ Tree.leaf "self" ];
        Tree.node "DoubleStarParam" [ Tree.leaf "kwargs" ];
      ]
  in
  let plus = Astplus.transform ~origins:Origins.none t in
  check_bool "def arity counted" true (plus.Tree.value = "NumArgs(2)")

let test_value_origin_decoration () =
  (* Example 3.8's RHS: a variable of Str origin *)
  let t =
    Tree.node "Assign"
      [
        Tree.node "AttributeStore"
          [ Tree.node "NameLoad" [ Tree.leaf "self" ]; Tree.node "Attr" [ Tree.leaf "name" ] ];
        Tree.node "NameLoad" [ Tree.leaf "title" ];
      ]
  in
  let origins = Origins.of_alists ~vars:[ ("title", "Str"); ("self", "Object") ] () in
  let plus = Astplus.transform ~origins t in
  check_str "store side undecorated, value side Str-decorated"
    "(Assign (AttributeStore (NameLoad (NumST(1) (Object self))) (Attr (NumST(1) name))) (NameLoad (NumST(1) (Str title))))"
    (Tree.to_sexp plus)

let test_expr_origin () =
  let o = Origins.of_alists ~vars:[ ("np", "numpy") ] ~calls:[ ("Picture", "Picture") ] () in
  let name_load v = Tree.node "NameLoad" [ Tree.leaf v ] in
  check_bool "var" true (Astplus.expr_origin o (name_load "np") = Some "numpy");
  check_bool "literal" true
    (Astplus.expr_origin o (Tree.node "Num" [ Tree.leaf "1" ]) = Some "Num");
  check_bool "call via callee" true
    (Astplus.expr_origin o (Tree.node "Call" [ name_load "Picture" ]) = Some "Picture");
  check_bool "new" true
    (Astplus.expr_origin o
       (Tree.node "New" [ Tree.node "TypeRef" [ Tree.leaf "Intent" ] ])
    = Some "Intent")

(* ---------------- relational operators (Examples 3.3 / 3.5) -------- *)

let np1 =
  Namepath.of_string
    "NumArgs(2) 0 Call 0 AttributeLoad 1 Attr 0 NumST(2) 1 TestCase 0 True"

let np2 =
  Namepath.of_string
    "NumArgs(2) 0 Call 0 AttributeLoad 1 Attr 0 NumST(2) 1 TestCase 0 Equal"

let np3 = Namepath.to_symbolic np1

let test_example_3_5 () =
  check_bool "np1 ∼ np2" true (Namepath.same_prefix np1 np2);
  check_bool "np1 = np2 fails" false (Namepath.equal np1 np2);
  check_bool "np1 ∼ np3" true (Namepath.same_prefix np1 np3);
  check_bool "np1 = np3 (ϵ matches)" true (Namepath.equal np1 np3)

let test_round_trip () =
  let s = Namepath.to_string np1 in
  check_str "to/of string round trip" s (Namepath.to_string (Namepath.of_string s));
  let sym = Namepath.to_string np3 in
  check_str "symbolic round trip" sym (Namepath.to_string (Namepath.of_string sym))

let test_extract_limit () =
  let wide =
    Tree.node "Call" (List.init 20 (fun i -> Tree.node "NameLoad" [ Tree.leaf (Printf.sprintf "v%d" i) ]))
  in
  check_int "limit respected" 10 (List.length (Namepath.extract ~limit:10 wide));
  check_int "custom limit" 3 (List.length (Namepath.extract ~limit:3 wide))

let test_extract_distinct_prefixes () =
  let paths = Namepath.extract (figure2_plus ()) in
  let keys = List.map Namepath.prefix_key paths in
  check_int "prefixes pairwise distinct" (List.length keys)
    (List.length (List.sort_uniq compare keys))

let test_extract_all_concrete () =
  let paths = Namepath.extract (figure2_plus ()) in
  check_bool "all concrete" true (List.for_all (fun p -> not (Namepath.is_symbolic p)) paths)

let prop_extract_leaf_count =
  QCheck.Test.make ~name:"namepath: ≤ min(leaves, limit) paths" ~count:100
    (QCheck.int_range 1 15)
    (fun n ->
      let t = Tree.node "R" (List.init n (fun i -> Tree.leaf (string_of_int (i mod 3)))) in
      List.length (Namepath.extract ~limit:10 t) <= min n 10)

(* ---------------- serialization and interning properties ------------- *)

(* Random well-formed paths: step values / end subtokens are space-free
   tokens (the only well-formedness [to_string] requires). *)
let path_gen =
  let open QCheck.Gen in
  let token =
    oneofl [ "Call"; "Attr"; "NameLoad"; "NumST(1)"; "NumArgs(2)"; "self"; "rotate"; "NUM" ]
  in
  let step = map2 (fun value index -> { Namepath.value; index }) token (int_range 0 3) in
  map2
    (fun prefix end_node -> { Namepath.prefix; end_node })
    (list_size (int_range 1 6) step)
    (oneof [ return None; map Option.some token ])

let path_arb = QCheck.make ~print:Namepath.to_string path_gen

let prop_of_string_round_trip =
  QCheck.Test.make ~name:"namepath: of_string ∘ to_string = id" ~count:300 path_arb
    (fun p -> Namepath.of_string (Namepath.to_string p) = p)

let prop_interned_pid_equality =
  QCheck.Test.make ~name:"interned: pid equality ⟺ text equality" ~count:100
    QCheck.(pair path_arb path_arb)
    (fun (a, b) ->
      let tb = Namepath.Interned.create_table () in
      let ia = Namepath.Interned.of_path ~table:tb a
      and ib = Namepath.Interned.of_path ~table:tb b in
      (ia.Namepath.Interned.pid = ib.Namepath.Interned.pid)
      = (Namepath.to_string a = Namepath.to_string b)
      && (ia.Namepath.Interned.prefix = ib.Namepath.Interned.prefix)
         = (Namepath.prefix_key a = Namepath.prefix_key b))

let prop_interned_sym_sharing =
  QCheck.Test.make ~name:"interned: symbolic form shares ids" ~count:100 path_arb
    (fun p ->
      let tb = Namepath.Interned.create_table () in
      let ip = Namepath.Interned.of_path ~table:tb p in
      let is_ = Namepath.Interned.of_path ~table:tb (Namepath.to_symbolic p) in
      ip.Namepath.Interned.sym = is_.Namepath.Interned.pid
      && ip.Namepath.Interned.prefix = is_.Namepath.Interned.prefix
      && is_.Namepath.Interned.end_ = -1
      && (Namepath.is_symbolic p = (ip.Namepath.Interned.end_ = -1)))

let test_interned_rank_order () =
  let module I = Namepath.Interned in
  let paths = [ np1; np2; np3 ] @ Namepath.extract (figure2_plus ()) in
  let interned = I.of_paths paths in
  I.freeze ();
  Fun.protect ~finally:I.thaw @@ fun () ->
  check_bool "frozen" true (I.is_frozen ());
  (* rank comparison must coincide with canonical-text comparison on every
     pair — the sort in Algorithm 1 is unchanged by interning *)
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          check_int "compare_rank ≡ compare_canonical"
            (compare (Namepath.compare_canonical a.I.np b.I.np) 0)
            (compare (I.compare_rank a b) 0))
        interned)
    interned;
  (* unknown strings never match while frozen: the sentinel is -2 *)
  check_int "unknown end while frozen" (-2) (I.end_id "no-such-subtoken-xyzzy")

let suite =
  [
    Alcotest.test_case "figure 2(c): AST+" `Quick test_figure2_astplus;
    Alcotest.test_case "figure 2(d): name paths" `Quick test_figure2_name_paths;
    Alcotest.test_case "w/o analysis: undecorated" `Quick test_no_analysis_undecorated;
    Alcotest.test_case "literal abstraction" `Quick test_literal_abstraction;
    Alcotest.test_case "NumArgs on definitions" `Quick test_numargs_on_def;
    Alcotest.test_case "value origin decoration" `Quick test_value_origin_decoration;
    Alcotest.test_case "expression origins" `Quick test_expr_origin;
    Alcotest.test_case "example 3.5: relational ops" `Quick test_example_3_5;
    Alcotest.test_case "serialization round trip" `Quick test_round_trip;
    Alcotest.test_case "extraction limit" `Quick test_extract_limit;
    Alcotest.test_case "distinct prefixes" `Quick test_extract_distinct_prefixes;
    Alcotest.test_case "all extracted paths concrete" `Quick test_extract_all_concrete;
    QCheck_alcotest.to_alcotest prop_extract_leaf_count;
    QCheck_alcotest.to_alcotest prop_of_string_round_trip;
    QCheck_alcotest.to_alcotest prop_interned_pid_equality;
    QCheck_alcotest.to_alcotest prop_interned_sym_sharing;
    Alcotest.test_case "interned: frozen rank order" `Quick test_interned_rank_order;
  ]
