(* Bounded-memory property check for the streaming frontend, run as its
   own executable so the top-heap watermark starts clean (it is
   monotonic per process — a prior test's allocations would mask growth).

   Scans a generated N-file corpus from disk, records the watermark,
   then scans 2N files: because the scan streams sources through the
   digest in bounded batches and retains only reports, the watermark
   after the doubled pass must stay within a noise margin of the first.
   A regression that holds sources (or digests) across the whole corpus
   shows up as a near-2x ratio.

   Usage: scale_mem.exe [N]   (default 2000; the bench gates the same
   property at paper scale, this is the fast @runtest guard) *)

module Corpus = Namer_corpus.Corpus
module Namer = Namer_core.Namer

let rec mkdir_p d =
  if not (Sys.file_exists d) then begin
    mkdir_p (Filename.dirname d);
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let gen_refs tmp ~n_files =
  let refs_rev = ref [] and last_dir = ref "" in
  Corpus.write_scale ~lang:Corpus.Python ~seed:42 ~files_per_repo:50 ~n_files
    (fun ~repo ~path ~source ->
      let full = Filename.concat tmp path in
      let dir = Filename.dirname full in
      if dir <> !last_dir then begin
        mkdir_p dir;
        last_dir := dir
      end;
      let oc = open_out_bin full in
      output_string oc source;
      close_out oc;
      refs_rev := Namer.ref_of_path ~repo ~path ~file:full :: !refs_rev);
  List.rev !refs_rev

let top_heap_mb () =
  float_of_int (Gc.quick_stat ()).Gc.top_heap_words
  *. float_of_int (Sys.word_size / 8)
  /. 1e6

let () =
  let n = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 2000 in
  let tmp = Filename.temp_file "namer_scale_mem" "" in
  Sys.remove tmp;
  Unix.mkdir tmp 0o700;
  Fun.protect
    ~finally:(fun () ->
      ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote tmp))))
  @@ fun () ->
  (* write_scale's prefix property: the N-file corpus is byte-identical
     to the first half of the 2N-file corpus, so the doubled scan
     revisits the same files plus as many again *)
  let refs = gen_refs tmp ~n_files:(2 * n) in
  let half = List.filteri (fun i _ -> i < n) refs in
  let t =
    Namer.build
      { Namer.default_config with Namer.use_classifier = false }
      (Corpus.generate
         { (Corpus.default_config Corpus.Python) with Corpus.n_repos = 10 })
  in
  let m = Namer.model_of t in
  let sr_half = Namer.scan_refs m half in
  let heap_half = top_heap_mb () in
  Namer.reset_in_flight_peak ();
  let sr_full = Namer.scan_refs m refs in
  let heap_full = top_heap_mb () in
  let in_flight = Namer.in_flight_sources_peak () in
  let ratio = heap_full /. Float.max 1.0 heap_half in
  Printf.printf
    "scale_mem: %d -> %d files, top-heap %.1f MB -> %.1f MB (%.2fx), %d source(s) \
     in flight, %d -> %d reports\n"
    n (2 * n) heap_half heap_full ratio in_flight
    (Array.length sr_half.Namer.sr_reports)
    (Array.length sr_full.Namer.sr_reports);
  let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("FAIL: " ^ s); exit 1) fmt in
  if Array.length sr_full.Namer.sr_reports < Array.length sr_half.Namer.sr_reports
  then fail "doubled corpus produced fewer reports — the prefix property broke";
  if in_flight > 1 then
    fail "%d sources in flight during a sequential scan (expected 1)" in_flight;
  if ratio > 1.35 then
    fail
      "top-heap grew %.2fx across a 2x corpus doubling (gate: <= 1.35x) — the scan \
       is no longer streaming"
      ratio
