(* Tests for Namer_telemetry: span nesting, counter/histogram aggregation,
   the Null-sink zero-cost path, exception safety, and a golden-file check
   that the Chrome-trace export is valid JSON with monotonically ordered
   [ts] fields. *)

module T = Namer_telemetry.Telemetry
module J = Namer_util.Json

let with_memory_sink f =
  T.reset ();
  T.set_sink T.Memory;
  Fun.protect ~finally:(fun () -> T.set_sink T.Null; T.reset ()) f

(* ---------------- spans ---------------- *)

let test_span_nesting () =
  with_memory_sink @@ fun () ->
  let r =
    T.with_span "outer" (fun () ->
        T.with_span "inner" (fun () -> ());
        T.with_span "inner" (fun () -> ());
        42)
  in
  Alcotest.(check int) "with_span returns" 42 r;
  let spans = T.spans () in
  Alcotest.(check int) "three spans" 3 (List.length spans);
  let outer = List.hd spans in
  Alcotest.(check string) "chronological order" "outer" outer.T.name;
  Alcotest.(check int) "outer depth" 0 outer.T.depth;
  List.iter
    (fun (s : T.span) ->
      if s.T.name = "inner" then begin
        Alcotest.(check int) "inner depth" 1 s.T.depth;
        Alcotest.(check bool) "inner starts after outer" true (s.T.ts_us >= outer.T.ts_us);
        Alcotest.(check bool) "inner inside outer" true
          (s.T.ts_us +. s.T.dur_us <= outer.T.ts_us +. outer.T.dur_us +. 1.0)
      end)
    spans

let test_span_exception_safety () =
  with_memory_sink @@ fun () ->
  (try T.with_span "boom" (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check int) "span recorded despite raise" 1 (List.length (T.spans ()));
  (* depth must be restored: a following span is top-level again *)
  T.with_span "after" (fun () -> ());
  let after = List.nth (T.spans ()) 1 in
  Alcotest.(check int) "depth restored" 0 after.T.depth

let test_stage_aggregation () =
  with_memory_sink @@ fun () ->
  T.with_span "a" (fun () -> T.with_span "b" (fun () -> ()));
  T.with_span "b" (fun () -> ());
  let stages = T.stages () in
  Alcotest.(check int) "two stages" 2 (List.length stages);
  let b = List.find (fun (s : T.stage) -> s.T.stage = "b") stages in
  Alcotest.(check int) "b folded" 2 b.T.s_count;
  (* first-appearance order: "a" starts before its child "b" *)
  Alcotest.(check string) "order by first appearance" "a"
    (List.hd stages).T.stage;
  Alcotest.(check bool) "table renders" true
    (String.length (T.stage_table ()) > 0)

(* ---------------- counters and histograms ---------------- *)

let test_counters () =
  with_memory_sink @@ fun () ->
  T.count "files";
  T.count "files";
  T.count ~by:3 "stmts";
  Alcotest.(check int) "files" 2 (T.counter "files");
  Alcotest.(check int) "stmts" 3 (T.counter "stmts");
  Alcotest.(check int) "missing" 0 (T.counter "nope");
  Alcotest.(check (list (pair string int))) "sorted registry"
    [ ("files", 2); ("stmts", 3) ]
    (T.counters ())

let test_histograms () =
  with_memory_sink @@ fun () ->
  List.iter (T.observe "ms") [ 1.0; 2.0; 3.0; 4.0; 5.0 ];
  match T.histogram "ms" with
  | None -> Alcotest.fail "histogram missing"
  | Some s ->
      Alcotest.(check int) "n" 5 s.T.n;
      Alcotest.(check (float 1e-9)) "total" 15.0 s.T.total;
      Alcotest.(check (float 1e-9)) "mean" 3.0 s.T.mean;
      Alcotest.(check (float 1e-9)) "p50" 3.0 s.T.p50;
      Alcotest.(check (float 1e-6)) "p90" 4.6 s.T.p90;
      Alcotest.(check (float 1e-6)) "p99" 4.96 s.T.p99

let test_record_ms () =
  with_memory_sink @@ fun () ->
  T.with_span ~record_ms:"lat" "work" (fun () -> ());
  match T.histogram "lat" with
  | None -> Alcotest.fail "record_ms histogram missing"
  | Some s -> Alcotest.(check int) "one observation" 1 s.T.n

(* ---------------- Null sink: zero-cost path ---------------- *)

let test_null_sink_records_nothing () =
  T.set_sink T.Null;
  T.reset ();
  let r = T.with_span "x" (fun () -> T.count "c"; T.observe "h" 1.0; 7) in
  Alcotest.(check int) "value passes through" 7 r;
  Alcotest.(check int) "no spans" 0 (List.length (T.spans ()));
  Alcotest.(check int) "no counters" 0 (List.length (T.counters ()));
  Alcotest.(check int) "no histograms" 0 (List.length (T.histograms ()));
  Alcotest.(check bool) "disabled" false (T.enabled ())

(* ---------------- Chrome trace export (golden check) ---------------- *)

let test_chrome_trace_valid_json () =
  with_memory_sink @@ fun () ->
  T.with_span "build" (fun () ->
      T.with_span "parse" (fun () -> ());
      T.with_span ~args:[ ("kind", "consistency") ] "mine" (fun () -> ()));
  let rendered = J.to_string ~indent:2 (T.to_chrome_json ()) in
  match J.parse rendered with
  | Error msg -> Alcotest.fail ("export is not valid JSON: " ^ msg)
  | Ok (J.Obj fields) -> (
      match List.assoc_opt "traceEvents" fields with
      | Some (J.List events) ->
          Alcotest.(check int) "three events" 3 (List.length events);
          let ts_of = function
            | J.Obj f -> (
                match List.assoc_opt "ts" f with
                | Some (J.Float x) -> x
                | Some (J.Int x) -> float_of_int x
                | _ -> Alcotest.fail "event without numeric ts")
            | _ -> Alcotest.fail "event is not an object"
          in
          let ts = List.map ts_of events in
          let rec monotonic = function
            | a :: (b :: _ as rest) -> a <= b && monotonic rest
            | _ -> true
          in
          Alcotest.(check bool) "ts monotonically ordered" true (monotonic ts);
          List.iter
            (fun ev ->
              match ev with
              | J.Obj f ->
                  Alcotest.(check bool) "complete event" true
                    (List.assoc_opt "ph" f = Some (J.String "X"))
              | _ -> ())
            events
      | _ -> Alcotest.fail "no traceEvents array")
  | Ok _ -> Alcotest.fail "top level is not an object"

let test_metrics_json_roundtrip () =
  with_memory_sink @@ fun () ->
  T.with_span "stage" (fun () -> ());
  T.count ~by:5 "things";
  T.observe "h" 2.0;
  let rendered = J.to_string ~indent:2 (T.metrics_json ()) in
  match J.parse rendered with
  | Error msg -> Alcotest.fail ("metrics JSON invalid: " ^ msg)
  | Ok (J.Obj fields) ->
      List.iter
        (fun key ->
          Alcotest.(check bool) (key ^ " present") true
            (List.mem_assoc key fields))
        [ "counters"; "histograms"; "stages" ]
  | Ok _ -> Alcotest.fail "metrics top level is not an object"

let suite =
  [
    Alcotest.test_case "span nesting" `Quick test_span_nesting;
    Alcotest.test_case "span exception safety" `Quick test_span_exception_safety;
    Alcotest.test_case "stage aggregation" `Quick test_stage_aggregation;
    Alcotest.test_case "counters" `Quick test_counters;
    Alcotest.test_case "histograms" `Quick test_histograms;
    Alcotest.test_case "record_ms" `Quick test_record_ms;
    Alcotest.test_case "null sink records nothing" `Quick test_null_sink_records_nothing;
    Alcotest.test_case "chrome trace valid json" `Quick test_chrome_trace_valid_json;
    Alcotest.test_case "metrics json roundtrip" `Quick test_metrics_json_roundtrip;
  ]
